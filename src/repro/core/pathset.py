"""Path sets: elements of ``P(E*)`` and the three set-level operations.

Section II of the paper lifts the path monoid to sets of paths with three
binary operations:

* ``U``   — standard set union (:meth:`PathSet.union`, ``A | B``),
* ``><_o`` — the *concatenative join* (:meth:`PathSet.join`, ``A @ B``):
  concatenate all pairs whose join vertex matches,
  ``{a o b | a in A, b in B, (a = eps or b = eps or gamma+(a) = gamma-(b))}``,
* ``x_o`` — the *concatenative product* (:meth:`PathSet.product`, ``A * B``):
  concatenate **all** pairs, permitting disjoint paths (teleportation).

The join is the paper's workhorse: footnote 4 identifies it as the theta-join
(equijoin) of Codd's relational algebra with predicate
``gamma+(a) = gamma-(b)``.  We therefore implement it as a hash equijoin —
bucket the right operand by tail vertex and probe with each left path's head
— rather than the naive quadratic filter.  Both are exposed so the benchmark
suite can measure the difference (experiment E6).

:class:`PathSet` is immutable (backed by :class:`frozenset`), hashable, and
iterable in a deterministic sorted order so results are reproducible.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.edge import Edge
from repro.core.path import EPSILON, Path

__all__ = ["PathSet", "EMPTY", "EPSILON_SET"]


def _as_path(item: object) -> Path:
    """Coerce edges / raw 3-tuples / edge iterables into :class:`Path`."""
    if isinstance(item, Path):
        return item
    if isinstance(item, Edge):
        return Path((item,))
    if isinstance(item, tuple) and len(item) == 3 and not isinstance(item[0], tuple):
        return Path((item,))
    return Path(item)


class PathSet:
    """An immutable set of paths, closed under the section II operations.

    Construction accepts any iterable of paths, edges, or raw
    ``(tail, label, head)`` triples; everything is normalized to
    :class:`Path`.

    Operator summary (paper notation -> Python):

    ========  ==========================  =====================
    paper     method                      operator
    ========  ==========================  =====================
    ``U``     :meth:`union`               ``A | B``
    ``><_o``  :meth:`join`                ``A @ B``
    ``x_o``   :meth:`product`             ``A * B``
    n-fold    :meth:`join_power`          ``A ** n``
    ========  ==========================  =====================

    Examples
    --------
    >>> A = PathSet([("i", "a", "j")])
    >>> B = PathSet([("j", "b", "k"), ("x", "b", "y")])
    >>> sorted(str(p) for p in A @ B)
    ['(i, a, j, j, b, k)']
    >>> len(A * B)   # the product keeps the disjoint concatenation too
    2
    """

    __slots__ = ("_paths", "_by_tail", "_by_head")

    def __init__(self, paths: Iterable = ()):  # noqa: D107 - documented on class
        self._paths: FrozenSet[Path] = frozenset(_as_path(p) for p in paths)
        self._by_tail: Optional[Dict[Hashable, List[Path]]] = None
        self._by_head: Optional[Dict[Hashable, List[Path]]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *paths) -> "PathSet":
        """Build a path set from path/edge arguments."""
        return cls(paths)

    @classmethod
    def empty(cls) -> "PathSet":
        """The empty path set (the zero of union and of join)."""
        return _EMPTY

    @classmethod
    def epsilon(cls) -> "PathSet":
        """``{epsilon}`` — the identity of the concatenative join and product."""
        return _EPSILON_SET

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "PathSet":
        """Lift an edge iterable to the set of its length-1 paths."""
        return cls(Path((e,)) for e in edges)

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        return _as_path(item) in self._paths

    def __iter__(self) -> Iterator[Path]:
        # Deterministic order: sort by (length, repr) so mixed vertex types
        # (ints and strings) never raise on comparison.
        return iter(sorted(self._paths, key=lambda p: (len(p), repr(p))))

    def __len__(self) -> int:
        return len(self._paths)

    def __bool__(self) -> bool:
        return bool(self._paths)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathSet):
            return self._paths == other._paths
        if isinstance(other, (set, frozenset)):
            return self._paths == frozenset(_as_path(p) for p in other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._paths)

    def __le__(self, other: "PathSet") -> bool:
        """Subset test: ``A <= B``."""
        return self._paths <= _coerce(other)._paths

    def __lt__(self, other: "PathSet") -> bool:
        return self._paths < _coerce(other)._paths

    def __ge__(self, other: "PathSet") -> bool:
        return self._paths >= _coerce(other)._paths

    def __gt__(self, other: "PathSet") -> bool:
        return self._paths > _coerce(other)._paths

    def issubset(self, other: "PathSet") -> bool:
        """True when every path of this set is in ``other``."""
        return self <= other

    @property
    def paths(self) -> FrozenSet[Path]:
        """The underlying frozenset of :class:`Path` objects."""
        return self._paths

    # ------------------------------------------------------------------
    # The section II operations
    # ------------------------------------------------------------------

    def union(self, other: "PathSet") -> "PathSet":
        """Set union ``A U B``."""
        return PathSet(self._paths | _coerce(other)._paths)

    def __or__(self, other: object) -> "PathSet":
        return self.union(_coerce(other))

    __ror__ = __or__

    def intersection(self, other: "PathSet") -> "PathSet":
        """Set intersection (not named in the paper, standard on ``P(E*)``)."""
        return PathSet(self._paths & _coerce(other)._paths)

    def __and__(self, other: object) -> "PathSet":
        return self.intersection(_coerce(other))

    def difference(self, other: "PathSet") -> "PathSet":
        """Set difference ``A \\ B``."""
        return PathSet(self._paths - _coerce(other)._paths)

    def __sub__(self, other: object) -> "PathSet":
        return self.difference(_coerce(other))

    def join(self, other: "PathSet") -> "PathSet":
        """The concatenative join ``A ><_o B`` (hash equijoin on the join vertex).

        Only *joint* pairs are concatenated: ``gamma+(a) == gamma-(b)``, with
        the paper's epsilon escape hatch — if either operand path is epsilon
        the pair always joins (epsilon is the concatenation identity).
        """
        other = _coerce(other)
        if not self._paths or not other._paths:
            return _EMPTY
        out: Set[Path] = set()
        right_index = other._tail_index()
        right_has_epsilon = EPSILON in other._paths
        for a in self._paths:
            if a.is_epsilon:
                # epsilon o b == b for every b in B.
                out.update(other._paths)
                continue
            for b in right_index.get(a.head, ()):
                out.add(a.concat(b))
            if right_has_epsilon:
                out.add(a)
        return PathSet(out)

    def join_naive(self, other: "PathSet") -> "PathSet":
        """The concatenative join computed by the definition's quadratic scan.

        Semantically identical to :meth:`join`; kept as the baseline for
        experiment E6 (naive filter vs hash equijoin).
        """
        other = _coerce(other)
        out = {
            a.concat(b)
            for a in self._paths
            for b in other._paths
            if a.is_epsilon or b.is_epsilon or a.head == b.tail
        }
        return PathSet(out)

    def __matmul__(self, other: object) -> "PathSet":
        return self.join(_coerce(other))

    def product(self, other: "PathSet") -> "PathSet":
        """The concatenative product ``A x_o B``: all pairwise concatenations.

        Unlike the join, disjoint pairs are kept — the paper's footnote 5
        motivates this with "teleportation" in priors-based algorithms.
        ``A ><_o B`` is always a subset of ``A x_o B`` (footnote 7).
        """
        other = _coerce(other)
        return PathSet(a.concat(b) for a in self._paths for b in other._paths)

    def __mul__(self, other: object) -> "PathSet":
        if isinstance(other, int):
            raise TypeError(
                "A * n is ambiguous; use A.join_power(n) (A ** n) or A.product(...)")
        return self.product(_coerce(other))

    def join_power(self, n: int) -> "PathSet":
        """The n-fold concatenative join ``A ><_o A ><_o ... ><_o A``.

        ``A ** 0`` is ``{epsilon}`` (the join identity), matching the regular
        expression convention ``R^0 = {eps}``.  Evaluated left-to-right;
        associativity (inherited from ``o``) makes the grouping immaterial.
        """
        if n < 0:
            raise ValueError("join power requires n >= 0")
        result = _EPSILON_SET
        for _ in range(n):
            result = result.join(self)
        return result

    def __pow__(self, n: int) -> "PathSet":
        return self.join_power(n)

    def closure(self, max_length: int) -> "PathSet":
        """Bounded Kleene star: ``U_{n=0..k} A^n`` truncated at ``max_length``.

        The true ``A*`` is infinite whenever the graph under ``A`` has a
        cycle, so any materialized star must be bounded.  ``max_length``
        bounds the *path length* of the result, not the exponent, so joining
        length-2 paths stops as soon as results would exceed the bound.
        """
        if max_length < 0:
            raise ValueError("closure bound must be >= 0")
        result: Set[Path] = {EPSILON}
        frontier: Set[Path] = {EPSILON}
        while frontier:
            grown = PathSet(frontier).join(self)
            fresh = {
                p for p in grown.paths
                if len(p) <= max_length and p not in result
            }
            result.update(fresh)
            frontier = fresh
        return PathSet(result)

    # ------------------------------------------------------------------
    # Restriction / projection helpers (the section III idioms build on these)
    # ------------------------------------------------------------------

    def starting_in(self, vertices: AbstractSet[Hashable]) -> "PathSet":
        """Paths whose tail is in ``vertices`` (left restriction, section III-B)."""
        vertex_set = set(vertices)
        return PathSet(p for p in self._paths if p and p.tail in vertex_set)

    def ending_in(self, vertices: AbstractSet[Hashable]) -> "PathSet":
        """Paths whose head is in ``vertices`` (right restriction, section III-C)."""
        vertex_set = set(vertices)
        return PathSet(p for p in self._paths if p and p.head in vertex_set)

    def with_labels(self, labels: AbstractSet[Hashable], position: Optional[int] = None) -> "PathSet":
        """Paths constrained by edge labels (section III-D).

        With ``position=None`` every edge of the path must carry a label in
        ``labels``; with ``position=n`` (1-indexed, like ``sigma``) only the
        nth edge is constrained.
        """
        label_set = set(labels)
        if position is None:
            return PathSet(
                p for p in self._paths
                if all(e.label in label_set for e in p))
        return PathSet(
            p for p in self._paths
            if len(p) >= position and p.edge(position).label in label_set)

    def filter(self, predicate: Callable[[Path], bool]) -> "PathSet":
        """Paths satisfying an arbitrary predicate."""
        return PathSet(p for p in self._paths if predicate(p))

    def joint(self) -> "PathSet":
        """Only the joint paths (Definition 3) of this set."""
        return PathSet(p for p in self._paths if p.is_joint)

    def of_length(self, n: int) -> "PathSet":
        """Only the paths with ``||a|| == n``."""
        return PathSet(p for p in self._paths if len(p) == n)

    def map(self, function: Callable[[Path], Path]) -> "PathSet":
        """Apply ``function`` to every path, collecting results as a set."""
        return PathSet(function(p) for p in self._paths)

    def tails(self) -> FrozenSet[Hashable]:
        """``{gamma-(a) | a in A}`` for the non-empty paths."""
        return frozenset(p.tail for p in self._paths if p)

    def heads(self) -> FrozenSet[Hashable]:
        """``{gamma+(a) | a in A}`` for the non-empty paths."""
        return frozenset(p.head for p in self._paths if p)

    def endpoint_pairs(self) -> FrozenSet[Tuple[Hashable, Hashable]]:
        """``{(gamma-(a), gamma+(a)) | a in A}`` — the section IV-C projection.

        This is the binary edge set ``E_ab`` the paper derives from a path
        set so single-relational algorithms can run on it.
        """
        return frozenset((p.tail, p.head) for p in self._paths if p)

    def label_paths(self) -> FrozenSet[Tuple[Hashable, ...]]:
        """``{omega'(a) | a in A}`` — the set of path labels (strings over Omega)."""
        return frozenset(p.label_path for p in self._paths)

    def max_length(self) -> int:
        """The length of the longest path (0 for the empty set)."""
        return max((len(p) for p in self._paths), default=0)

    # ------------------------------------------------------------------
    # Internal indices
    # ------------------------------------------------------------------

    def _tail_index(self) -> Dict[Hashable, List[Path]]:
        """Bucket non-empty paths by tail vertex (probe side of the equijoin)."""
        if self._by_tail is None:
            index: Dict[Hashable, List[Path]] = defaultdict(list)
            for p in self._paths:
                if p:
                    index[p.tail].append(p)
            self._by_tail = dict(index)
        return self._by_tail

    def _head_index(self) -> Dict[Hashable, List[Path]]:
        """Bucket non-empty paths by head vertex (for right-to-left joins)."""
        if self._by_head is None:
            index: Dict[Hashable, List[Path]] = defaultdict(list)
            for p in self._paths:
                if p:
                    index[p.head].append(p)
            self._by_head = dict(index)
        return self._by_head

    def __repr__(self) -> str:
        if not self._paths:
            return "PathSet()"
        preview = ", ".join(str(p) for n, p in zip(range(4), self))
        if len(self._paths) > 4:
            preview += ", ..."
        return "PathSet<{} paths: {}>".format(len(self._paths), preview)


def _coerce(value: object) -> PathSet:
    """Accept PathSet or any path iterable where a PathSet is expected."""
    if isinstance(value, PathSet):
        return value
    return PathSet(value)


_EMPTY = PathSet()
_EPSILON_SET = PathSet((EPSILON,))

#: The empty path set — absorbing for join and product, identity for union.
EMPTY = _EMPTY

#: ``{epsilon}`` — identity for the concatenative join and product.
EPSILON_SET = _EPSILON_SET
