"""Section IV-C: constructing semantically-rich single-relational graphs.

The paper contrasts three ways of feeding a multi-relational graph to the
classical single-relational algorithm corpus:

* **M1 — ignore labels** (:func:`ignore_labels`): collapse every edge to a
  vertex pair.  Cheap, but "what is the resulting semantics of, say, a
  centrality algorithm?"
* **M2 — extract a relation** (:func:`extract_relation`): keep only
  ``E_a = {(gamma-(e), gamma+(e)) | omega(e) = a}``.
* **M3 — path projection** (:func:`project_paths`, :func:`project_label_sequence`,
  :func:`project_regular`): derive *implicit* edges from paths, e.g.
  ``E_ab = U_{a in A ><_o B} (gamma-(a), gamma+(a))``, optionally through a
  full regular path generator.

M3 is the paper's contribution; M1/M2 are the baselines experiment E5
compares against.  All three return :class:`BinaryProjection`, a small value
object bundling the binary edge set with provenance and conversion helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from repro.core.pathset import PathSet
from repro.core.traversal import labeled_traversal
from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "BinaryProjection",
    "ignore_labels",
    "extract_relation",
    "project_paths",
    "project_label_sequence",
    "project_regular",
]


@dataclass(frozen=True)
class BinaryProjection:
    """A derived single-relational graph ``E' subseteq (V x V)`` with provenance.

    ``pairs`` is the binary edge set; ``method`` records which of the
    paper's three constructions produced it; ``weights`` optionally counts
    how many witness paths produced each pair (path multiplicity — useful as
    an edge weight for spectral algorithms).
    """

    pairs: FrozenSet[Tuple[Hashable, Hashable]]
    method: str
    description: str = ""
    weights: Optional[Dict[Tuple[Hashable, Hashable], int]] = field(
        default=None, compare=False)

    def vertices(self) -> FrozenSet[Hashable]:
        """Every vertex incident to a projected pair."""
        out = set()
        for tail, head in self.pairs:
            out.add(tail)
            out.add(head)
        return frozenset(out)

    def to_digraph(self):
        """The projection as a :class:`repro.algorithms.digraph.DiGraph`."""
        from repro.algorithms.digraph import DiGraph
        graph = DiGraph()
        for tail, head in self.pairs:
            weight = 1.0
            if self.weights is not None:
                weight = float(self.weights.get((tail, head), 1))
            graph.add_edge(tail, head, weight=weight)
        return graph

    def to_networkx(self):
        """The projection as a ``networkx.DiGraph`` (lazy import)."""
        from repro.graph.convert import binary_edges_to_networkx
        out = binary_edges_to_networkx(self.pairs, name=self.description)
        if self.weights is not None:
            for (tail, head), count in self.weights.items():
                out[tail][head]["weight"] = float(count)
        return out

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair) -> bool:
        return tuple(pair) in self.pairs

    def __repr__(self) -> str:
        return "BinaryProjection<{} pairs via {}>".format(len(self.pairs), self.method)


def ignore_labels(graph: MultiRelationalGraph) -> BinaryProjection:
    """Method M1: drop labels (and merge repeated edges between a pair)."""
    return BinaryProjection(
        pairs=graph.collapsed(),
        method="ignore-labels",
        description="all labels collapsed")


def extract_relation(graph: MultiRelationalGraph, label: Hashable) -> BinaryProjection:
    """Method M2: the single relation ``E_label``."""
    return BinaryProjection(
        pairs=graph.relation(label),
        method="extract-relation",
        description="relation {!r} only".format(label))


def project_paths(paths: PathSet, description: str = "") -> BinaryProjection:
    """Method M3 core: ``E' = U_{a in paths} (gamma-(a), gamma+(a))``.

    ``weights`` counts witness paths per pair, so downstream algorithms can
    treat "more distinct paths" as "stronger implicit relation".
    """
    weights: Dict[Tuple[Hashable, Hashable], int] = {}
    for p in paths:
        if not p:
            continue
        pair = (p.tail, p.head)
        weights[pair] = weights.get(pair, 0) + 1
    return BinaryProjection(
        pairs=frozenset(weights),
        method="path-projection",
        description=description or "projection of {} paths".format(len(paths)),
        weights=weights)


def project_label_sequence(graph: MultiRelationalGraph,
                           labels: Sequence[Hashable],
                           description: str = "") -> BinaryProjection:
    """Method M3, the paper's worked case: all ``a b ...``-paths projected.

    For ``labels = (a, b)`` this is exactly the paper's
    ``E_ab = U_{x in A ><_o B} (gamma-(x), gamma+(x))`` with
    ``A = {e | omega(e) = a}`` and ``B = {e | omega(e) = b}``.
    """
    if not labels:
        raise ValueError("need at least one label in the sequence")
    paths = labeled_traversal(graph, [frozenset([label]) for label in labels])
    return project_paths(
        paths,
        description=description or "label sequence {}".format("-".join(map(str, labels))))


def project_regular(graph: MultiRelationalGraph, expression,
                    max_length: int, description: str = "") -> BinaryProjection:
    """Method M3 with a full regular path expression (section IV-B generator).

    ``expression`` is a :mod:`repro.regex` AST; generation is bounded by
    ``max_length`` because Kleene stars over cyclic graphs are infinite.
    """
    from repro.automata.generator import generate_paths
    paths = generate_paths(graph, expression, max_length=max_length)
    return project_paths(
        paths,
        description=description or "regular expression projection")
