"""The section III traversal idioms.

Section III expresses every traversal as an n-fold concatenative join in
which each operand is a *restriction* of the full edge set ``E``:

* **complete** — ``E ><_o ... ><_o E``: all joint paths of length n,
* **source** — the first operand keeps only edges with tail in ``Vs``,
* **destination** — the last operand keeps only edges with head in ``Vd``,
* **labeled** — each operand keeps only edges whose label is in a given set.

:class:`Step` captures one operand's restriction (tails, labels, heads — any
subset, all optional); :func:`traverse` evaluates a step sequence.  The
idiom functions below are the paper's four named traversals spelled as step
sequences.  All results are :class:`PathSet` of *joint* paths of exactly the
requested length (paths that dead-end early simply do not appear, matching
the algebra: a join with no partner contributes nothing).

The paper's complement convention ("start everywhere except ``Vs``") is
supported by the ``exclude_*`` fields of :class:`Step`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, Hashable, Iterable, List, Optional, Sequence

from repro.core.edge import Edge
from repro.core.pathset import PathSet
from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "Step",
    "resolve_step",
    "traverse",
    "complete_traversal",
    "source_traversal",
    "destination_traversal",
    "labeled_traversal",
    "between_traversal",
]


@dataclass(frozen=True)
class Step:
    """The restriction applied to one join operand.

    Each field narrows which edges of ``E`` participate in this step:

    * ``tails`` — keep edges with ``gamma-(e)`` in the set (section III-B),
    * ``heads`` — keep edges with ``gamma+(e)`` in the set (section III-C),
    * ``labels`` — keep edges with ``omega(e)`` in the set (section III-D),
    * ``exclude_tails`` / ``exclude_heads`` / ``exclude_labels`` — the
      paper's complement notation (``Vs-bar``): keep everything *not* listed.

    ``None`` means unconstrained.  A fully-default ``Step()`` is the complete
    traversal's operand ``E``.
    """

    tails: Optional[frozenset] = None
    labels: Optional[frozenset] = None
    heads: Optional[frozenset] = None
    exclude_tails: Optional[frozenset] = None
    exclude_labels: Optional[frozenset] = None
    exclude_heads: Optional[frozenset] = None

    @classmethod
    def make(cls, tails: Optional[Iterable[Hashable]] = None,
             labels: Optional[Iterable[Hashable]] = None,
             heads: Optional[Iterable[Hashable]] = None,
             exclude_tails: Optional[Iterable[Hashable]] = None,
             exclude_labels: Optional[Iterable[Hashable]] = None,
             exclude_heads: Optional[Iterable[Hashable]] = None) -> "Step":
        """Build a step from plain iterables (frozensets are made for you)."""
        def freeze(value: Optional[Iterable[Hashable]]) -> Optional[FrozenSet[Hashable]]:
            return None if value is None else frozenset(value)
        return cls(freeze(tails), freeze(labels), freeze(heads),
                   freeze(exclude_tails), freeze(exclude_labels),
                   freeze(exclude_heads))

    def admits(self, e: Edge) -> bool:
        """True when edge ``e`` satisfies every constraint of this step."""
        if self.tails is not None and e.tail not in self.tails:
            return False
        if self.labels is not None and e.label not in self.labels:
            return False
        if self.heads is not None and e.head not in self.heads:
            return False
        if self.exclude_tails is not None and e.tail in self.exclude_tails:
            return False
        if self.exclude_labels is not None and e.label in self.exclude_labels:
            return False
        if self.exclude_heads is not None and e.head in self.exclude_heads:
            return False
        return True


def resolve_step(graph: MultiRelationalGraph, step: Step) -> PathSet:
    """Materialize a step's edge set against a graph, via the best index.

    Positive tail/label/head constraints route through the graph's indices
    (union of point lookups); exclusions are applied as a post-filter.  Only
    a fully-unconstrained step scans all of ``E``.
    """
    candidates: Iterable[Edge]
    if step.tails is not None:
        candidates = []
        for tail in step.tails:
            if not graph.has_vertex(tail):
                continue
            if step.labels is not None:
                for label in step.labels:
                    candidates.extend(graph.match(tail=tail, label=label))
            else:
                candidates.extend(graph.match(tail=tail))
    elif step.heads is not None:
        candidates = []
        for head in step.heads:
            if not graph.has_vertex(head):
                continue
            if step.labels is not None:
                for label in step.labels:
                    candidates.extend(graph.match(label=label, head=head))
            else:
                candidates.extend(graph.match(head=head))
    elif step.labels is not None:
        candidates = []
        for label in step.labels:
            candidates.extend(graph.match(label=label))
    else:
        candidates = graph.edge_set()
    return PathSet.from_edges(e for e in candidates if step.admits(e))


def traverse(graph: MultiRelationalGraph, steps: Sequence[Step]) -> PathSet:
    """Evaluate ``resolve(s1) ><_o resolve(s2) ><_o ... ><_o resolve(sn)``.

    An empty step sequence yields ``{epsilon}`` (the join identity),
    mirroring ``A^0 = {eps}``.
    """
    result = PathSet.epsilon()
    for step in steps:
        operand = resolve_step(graph, step)
        result = result.join(operand)
        if not result:
            return result
    return result


def complete_traversal(graph: MultiRelationalGraph, length: int) -> PathSet:
    """Section III-A: all joint paths of exactly ``length`` edges.

    ``E ><_o E ><_o ... ><_o E`` (length times).  Beware: grows with the
    number of walks, which is exponential in dense graphs.
    """
    _require_positive_length(length)
    return traverse(graph, [Step()] * length)


def source_traversal(graph: MultiRelationalGraph,
                     sources: AbstractSet[Hashable], length: int,
                     complement: bool = False) -> PathSet:
    """Section III-B: joint paths of ``length`` edges emanating from ``sources``.

    The first operand is ``A = {e | gamma-(e) in Vs}``; subsequent operands
    are the full ``E``.  With ``complement=True`` the restriction inverts to
    the paper's ``Vs-bar`` ("start anywhere except Vs").
    """
    _require_positive_length(length)
    if complement:
        first = Step.make(exclude_tails=sources)
    else:
        first = Step.make(tails=sources)
    return traverse(graph, [first] + [Step()] * (length - 1))


def destination_traversal(graph: MultiRelationalGraph,
                          destinations: AbstractSet[Hashable], length: int,
                          complement: bool = False) -> PathSet:
    """Section III-C: joint paths of ``length`` edges terminating in ``destinations``.

    The last operand is ``B = {e | gamma+(e) in Vd}``.
    """
    _require_positive_length(length)
    if complement:
        last = Step.make(exclude_heads=destinations)
    else:
        last = Step.make(heads=destinations)
    return traverse(graph, [Step()] * (length - 1) + [last])


def between_traversal(graph: MultiRelationalGraph,
                      sources: AbstractSet[Hashable],
                      destinations: AbstractSet[Hashable],
                      length: int) -> PathSet:
    """Source and destination combined: ``A ><_o E ... E ><_o B``.

    For ``length == 1`` the single operand carries both restrictions.
    """
    _require_positive_length(length)
    if length == 1:
        return traverse(graph, [Step.make(tails=sources, heads=destinations)])
    steps = ([Step.make(tails=sources)]
             + [Step()] * (length - 2)
             + [Step.make(heads=destinations)])
    return traverse(graph, steps)


def labeled_traversal(graph: MultiRelationalGraph,
                      label_sequence: Sequence[Iterable[Hashable]]) -> PathSet:
    """Section III-D: constrain each step to a label set.

    ``label_sequence[k]`` is the allowed label set ``Omega_k`` of step k; a
    value of ``None`` leaves the step unconstrained.  The result contains
    exactly the joint paths whose path label ``omega'(a)`` is member-wise
    within the sequence.
    """
    steps: List[Step] = []
    for labels in label_sequence:
        if labels is None:
            steps.append(Step())
        else:
            steps.append(Step.make(labels=labels))
    return traverse(graph, steps)


def _require_positive_length(length: int) -> None:
    if length < 1:
        raise ValueError("traversal length must be >= 1 (got {})".format(length))
