"""The edge type: the atoms of the path algebra.

The paper models a multi-relational graph as ``G = (V, E)`` with
``E subseteq (V x Omega x V)``: every edge is a *ternary* tuple
``(tail, label, head)``.  Keeping the label inside the edge (rather than
using one binary relation per label) is the paper's central representational
choice — it is what lets concatenative joins preserve path labels (section II,
closing discussion).

:class:`Edge` is an immutable, hashable value type.  Vertices and labels may
be any hashable Python values (ints, strings, tuples, frozen dataclasses...).
"""

from __future__ import annotations

from typing import Hashable, Tuple

__all__ = ["Edge", "edge"]


class Edge(tuple):
    """An immutable directed labeled edge ``(tail, label, head)``.

    ``Edge`` subclasses :class:`tuple`, so an edge *is* the paper's ternary
    tuple: it compares, hashes, unpacks and sorts exactly like
    ``(tail, label, head)``.  The named accessors implement the paper's
    projection operators for single edges:

    * ``edge.tail``   — gamma-minus, the source vertex,
    * ``edge.head``   — gamma-plus, the target vertex,
    * ``edge.label``  — omega, the relation type in Omega.

    Examples
    --------
    >>> e = Edge("i", "alpha", "j")
    >>> e.tail, e.label, e.head
    ('i', 'alpha', 'j')
    >>> e == ("i", "alpha", "j")
    True
    >>> e.inverted()
    Edge('j', 'alpha', 'i')
    """

    __slots__ = ()

    def __new__(cls, tail: Hashable, label: Hashable, head: Hashable) -> "Edge":
        return tuple.__new__(cls, (tail, label, head))

    def __getnewargs__(self) -> Tuple[Hashable, Hashable, Hashable]:
        # tuple subclasses with a custom __new__ signature must spell out
        # their reconstruction arguments or unpickling fails — and edges
        # cross process boundaries inside the parallel executor's results.
        return tuple(self)

    @property
    def tail(self) -> Hashable:
        """The source vertex (the paper's ``gamma-(e)``)."""
        return tuple.__getitem__(self, 0)

    @property
    def label(self) -> Hashable:
        """The edge label / relation type (the paper's ``omega(e)``)."""
        return tuple.__getitem__(self, 1)

    @property
    def head(self) -> Hashable:
        """The target vertex (the paper's ``gamma+(e)``)."""
        return tuple.__getitem__(self, 2)

    def inverted(self) -> "Edge":
        """Return the edge with tail and head swapped, keeping the label.

        Useful for treating a directed multi-relational graph as undirected
        or for defining inverse relations (e.g. ``created`` / ``created_by``).
        """
        return Edge(self.head, self.label, self.tail)

    def relabeled(self, label: Hashable) -> "Edge":
        """Return a copy of this edge carrying ``label`` instead."""
        return Edge(self.tail, label, self.head)

    def is_loop(self) -> bool:
        """True when the edge adjoins a vertex to itself."""
        return self.tail == self.head

    def endpoints(self) -> Tuple[Hashable, Hashable]:
        """The ``(tail, head)`` vertex pair, dropping the label.

        This is the binary-relation view used by the paper's section IV-C
        single-relational projections.
        """
        return (self.tail, self.head)

    def __repr__(self) -> str:
        return "Edge({!r}, {!r}, {!r})".format(self.tail, self.label, self.head)


def edge(tail: Hashable, label: Hashable, head: Hashable) -> Edge:
    """Convenience constructor: ``edge(i, a, j)`` is ``Edge(i, a, j)``."""
    return Edge(tail, label, head)
