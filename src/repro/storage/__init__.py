"""Durable graph storage: write-ahead log + mmap'd CSR snapshot store.

See :mod:`repro.storage.persistent` for the lifecycle, ``docs/persistence.md``
for the on-disk formats and crash-consistency guarantees.
"""

from repro.storage.persistent import PersistentGraph
from repro.storage.snapshots import (
    SnapshotMetadata,
    fold_view,
    open_adjacency_snapshot,
    open_digraph_snapshot,
    open_shard,
    open_sharded_snapshot,
    read_shard_manifest,
    write_adjacency_snapshot,
    write_digraph_snapshot,
    write_sharded_snapshots,
)
from repro.storage.segments import (
    ReplicationCursor,
    ShipResult,
    WalSegments,
    decode_frames,
    scrub_wal_file,
)
from repro.storage.wal import WriteAheadLog, scan_wal

__all__ = [
    "PersistentGraph",
    "WriteAheadLog",
    "scan_wal",
    "WalSegments",
    "ReplicationCursor",
    "ShipResult",
    "decode_frames",
    "scrub_wal_file",
    "SnapshotMetadata",
    "fold_view",
    "write_adjacency_snapshot",
    "open_adjacency_snapshot",
    "write_digraph_snapshot",
    "open_digraph_snapshot",
    "write_sharded_snapshots",
    "read_shard_manifest",
    "open_shard",
    "open_sharded_snapshot",
]
