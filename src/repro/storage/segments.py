"""Size-capped, CRC-framed WAL segments — the shippable replication log.

A :class:`~repro.storage.wal.WriteAheadLog` is one per-generation file
that a checkpoint *truncates*; nothing outlives the fold, so there is
nothing a replica could tail.  This module keeps a second, long-lived
copy of the same journal records as a sequence of **segments**::

    store/segments/
      segments.json        manifest: retained segments + base version
      segment-000001.wal   sealed   (RPWAL001-framed, CRC per record)
      segment-000002.wal   active   (appends go here)
      archive/             sealed segments already folded into a snapshot

Each segment file uses the exact WAL framing from :mod:`.wal` (magic,
``<II`` length+crc32 frame, JSON payload), so the frame readers, torn-tail
recovery, and fsync batching are all reused rather than re-invented.  The
active segment rotates once it exceeds ``segment_bytes``: it is flushed,
recorded as *sealed* in the manifest (with its durable byte length and
last record version), and a fresh segment opens.  Sealed segments whose
records are all folded into a published snapshot are *archived* — moved
aside, no longer served — which bounds retained disk.

Cursors
-------
A :class:`ReplicationCursor` addresses a byte position ``(segment,
offset)`` in this log.  :meth:`WalSegments.read_from` returns the raw
CRC-framed byte run starting at a cursor — the bytes are shipped as-is,
so the per-record CRC32 protects the records end-to-end from the
primary's disk to the replica's apply loop.  A cursor pointing before the
first retained segment raises
:class:`~repro.errors.ReplicationCursorGapError`: the suffix can no
longer be served and the replica must re-bootstrap.  Segment indices are
never reused (archival and :meth:`reset_base` keep counting upward), so a
stale cursor is always *detected*, never silently re-interpreted.

``base_version`` is the journal version the segment log starts after —
records with ``version <= base_version`` are only available via the
snapshot.  :meth:`reset_base` reseals everything and starts a fresh log
after an event that may have lost records (healing from degraded mode, a
primary that rewound to its durable prefix); every outstanding cursor
then gaps, forcing replicas back through bootstrap instead of letting
them tail across a discontinuity.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.concurrency import ordered_lock, release_resource, track_resource
from repro.errors import (
    ReplicationCorruptionError,
    ReplicationCursorGapError,
    ReplicationError,
    StorageError,
)
from repro.storage.wal import (
    WAL_MAGIC,
    WriteAheadLog,
    encode_record,
    scan_wal,
)

__all__ = [
    "ReplicationCursor",
    "WalSegments",
    "ShipResult",
    "SEGMENTS_DIRNAME",
    "SEGMENTS_MANIFEST_NAME",
    "scrub_wal_file",
    "decode_frames",
]

#: Subdirectory of a store that holds the segment log.
SEGMENTS_DIRNAME = "segments"

#: Manifest file inside the segments directory.
SEGMENTS_MANIFEST_NAME = "segments.json"

#: Archived (no-longer-served) sealed segments live here.
ARCHIVE_DIRNAME = "archive"

#: Rotate the active segment once it exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_FRAME = struct.Struct("<II")  # payload length, payload crc32 (wal framing)

_DATA_START = len(WAL_MAGIC)


class ReplicationCursor:
    """An immutable position in the segment log: ``(segment, offset)``.

    ``segment`` is a segment *index* (monotonic, never reused) and
    ``offset`` a byte offset inside that segment file, always on a frame
    boundary when produced by this module.  The wire form is the token
    ``"<segment>:<offset>"`` (``str(cursor)``).
    """

    __slots__ = ("segment", "offset")

    def __init__(self, segment: int, offset: int):
        if segment < 1 or offset < _DATA_START:
            raise ReplicationError(
                "invalid replication cursor ({}, {})".format(segment, offset))
        object.__setattr__(self, "segment", segment)
        object.__setattr__(self, "offset", offset)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ReplicationCursor is immutable")

    def __getstate__(self) -> Tuple[int, int]:
        return (self.segment, self.offset)

    def __setstate__(self, state: Tuple[int, int]) -> None:
        object.__setattr__(self, "segment", state[0])
        object.__setattr__(self, "offset", state[1])

    @classmethod
    def parse(cls, token: str) -> "ReplicationCursor":
        """Parse the ``"segment:offset"`` wire token."""
        head, sep, tail = token.partition(":")
        if not sep:
            raise ReplicationError(
                "bad replication cursor token {!r}: expected "
                "'segment:offset'".format(token))
        try:
            return cls(int(head), int(tail))
        except ValueError as exc:
            raise ReplicationError(
                "bad replication cursor token {!r}: {}".format(token, exc)) \
                from exc

    def token(self) -> str:
        return "{}:{}".format(self.segment, self.offset)

    def __str__(self) -> str:
        return self.token()

    def __repr__(self) -> str:
        return "ReplicationCursor<{}>".format(self.token())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReplicationCursor) \
            and (self.segment, self.offset) == (other.segment, other.offset)

    def __hash__(self) -> int:
        return hash((self.segment, self.offset))

    def __lt__(self, other: "ReplicationCursor") -> bool:
        return (self.segment, self.offset) < (other.segment, other.offset)


class ShipResult:
    """One :meth:`WalSegments.read_from` batch: framed bytes + next cursor.

    ``data`` is a raw run of CRC-framed records (possibly empty);
    ``cursor`` is where the *next* read should start; ``at_end`` is True
    when the read drained everything durable at the time of the call.
    """

    __slots__ = ("data", "cursor", "at_end")

    def __init__(self, data: bytes, cursor: ReplicationCursor, at_end: bool):
        self.data = data
        self.cursor = cursor
        self.at_end = at_end

    def __repr__(self) -> str:
        return "ShipResult<{} bytes, next={}, at_end={}>".format(
            len(self.data), self.cursor, self.at_end)


def _segment_name(index: int) -> str:
    return "segment-{:06d}.wal".format(index)


def scrub_wal_file(path: str, limit: Optional[int] = None
                   ) -> Tuple[int, int, Optional[Dict[str, Any]]]:
    """CRC-walk one RPWAL001 file: ``(records, durable_end, finding)``.

    ``finding`` is None for a clean file, else a dict with ``kind``
    (``"torn-tail"`` for an incomplete trailing frame — the documented
    crash artifact — or ``"corrupt"`` for a CRC mismatch or a short file
    inside the committed region), plus the record index and byte offset
    of the first bad frame.  ``limit`` bounds the committed region (a
    sealed segment's recorded durable length): anything unreadable below
    it is corruption, never a torn tail.
    """
    records = 0
    try:
        stream = open(path, "rb")
    except OSError as exc:
        return 0, 0, {"kind": "corrupt", "record": 0, "offset": 0,
                      "reason": "unreadable: {}".format(exc)}
    with stream:
        magic = stream.read(len(WAL_MAGIC))
        if magic != WAL_MAGIC:
            return 0, 0, {"kind": "corrupt", "record": 0, "offset": 0,
                          "reason": "bad magic"}
        offset = _DATA_START
        while True:
            if limit is not None and offset >= limit:
                return records, offset, None
            frame = stream.read(_FRAME.size)
            if not frame:
                return records, offset, None
            if len(frame) < _FRAME.size:
                kind = "corrupt" if limit is not None else "torn-tail"
                return records, offset, {
                    "kind": kind, "record": records, "offset": offset,
                    "reason": "incomplete frame header"}
            length, crc = _FRAME.unpack(frame)
            payload = stream.read(length)
            if len(payload) < length:
                kind = "corrupt" if limit is not None else "torn-tail"
                return records, offset, {
                    "kind": kind, "record": records, "offset": offset,
                    "reason": "incomplete payload"}
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return records, offset, {
                    "kind": "corrupt", "record": records, "offset": offset,
                    "reason": "payload crc32 mismatch"}
            records += 1
            offset += _FRAME.size + length


class WalSegments:
    """The rotating, shippable segment log under ``<dir>``.

    Thread-safe: one ``storage.segments`` ordered lock guards appends,
    rotation, archival, and reads (reads open their own file handle but
    the manifest snapshot they act on must be consistent).  Appends go
    through a real :class:`WriteAheadLog` on the active segment, so
    fsync batching, short-write rollback, and torn-tail recovery are the
    storage tier's own, not a parallel implementation.
    """

    def __init__(self, directory: str,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 sync: str = "batch", batch_size: int = 64,
                 base_version: int = 0):
        self.directory = os.path.abspath(directory)
        self.segment_bytes = max(1, segment_bytes)
        self._sync = sync
        self._batch_size = batch_size
        self._lock = ordered_lock("storage.segments")
        self._closed = False
        self._active: Optional[WriteAheadLog] = None
        manifest_path = os.path.join(self.directory, SEGMENTS_MANIFEST_NAME)
        if os.path.exists(manifest_path):
            manifest = self._load_manifest(manifest_path)
        else:
            os.makedirs(self.directory, exist_ok=True)
            manifest = {"format": 1, "base_version": base_version,
                        "next_index": 1, "segments": []}
        self._base_version = int(manifest["base_version"])
        self._next_index = int(manifest["next_index"])
        self._segments: List[Dict[str, Any]] = list(manifest["segments"])
        self._leak_token = track_resource("segments", self.directory)
        try:
            self._last_version = self._recover_tail()
            self._write_manifest()
        except BaseException:
            release_resource(self._leak_token)
            raise

    # -- manifest ------------------------------------------------------

    @staticmethod
    def _load_manifest(path: str) -> Dict[str, Any]:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except (OSError, ValueError) as exc:
            raise StorageError(
                "unreadable segments manifest {}: {}".format(path, exc)) \
                from exc
        if not isinstance(manifest, dict) or manifest.get("format") != 1 \
                or not isinstance(manifest.get("segments"), list):
            raise StorageError(
                "segments manifest {} has unsupported structure".format(path))
        return manifest

    def _manifest_dict(self) -> Dict[str, Any]:
        return {"format": 1, "base_version": self._base_version,
                "next_index": self._next_index, "segments": self._segments}

    def _write_manifest(self) -> None:  # guarded-by: _lock
        path = os.path.join(self.directory, SEGMENTS_MANIFEST_NAME)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(self._manifest_dict(), stream, indent=1, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path)

    # -- open/recovery -------------------------------------------------

    def _recover_tail(self) -> int:  # guarded-by: _lock (construction)
        """Open (or create) the active segment; return the last version."""
        last_version = self._base_version
        for entry in self._segments[:-1]:
            if not entry.get("sealed"):
                # A crash between seal and manifest write can only lose
                # the *seal mark* of the final segment; anything earlier
                # unsealed means the manifest was edited by hand.
                raise StorageError(
                    "segments manifest lists unsealed non-tail segment "
                    "{!r}".format(entry.get("name")))
        if self._segments:
            for entry in self._segments:
                if entry.get("sealed"):
                    last_version = int(entry["end_version"])
        tail = self._segments[-1] if self._segments else None
        self._active_bytes = _DATA_START
        if tail is not None and not tail.get("sealed"):
            path = os.path.join(self.directory, str(tail["name"]))
            entries, durable_end, tail_torn = scan_wal(path)
            if entries:
                last_version = int(entries[-1][0])
            tail["end_offset"] = durable_end
            tail["end_version"] = last_version
            self._active = WriteAheadLog(
                path, sync=self._sync, batch_size=self._batch_size,
                scanned=(durable_end, tail_torn))
            self._active_bytes = durable_end
        return last_version

    def _open_fresh_segment(self) -> None:  # guarded-by: _lock
        index = self._next_index
        self._next_index += 1
        name = _segment_name(index)
        self._segments.append({
            "index": index, "name": name, "sealed": False,
            "end_offset": _DATA_START, "end_version": self._last_version})
        self._active = WriteAheadLog(
            os.path.join(self.directory, name),
            sync=self._sync, batch_size=self._batch_size)
        self._active_bytes = _DATA_START
        self._write_manifest()

    # -- properties ----------------------------------------------------

    @property
    def base_version(self) -> int:
        """Versions at or below this are only in the snapshot."""
        return self._base_version

    @property
    def last_version(self) -> int:
        """Version of the newest appended record (buffered included)."""
        return self._last_version

    def first_retained(self) -> Optional[int]:
        with self._lock:
            return int(self._segments[0]["index"]) if self._segments else None

    def end_cursor(self) -> ReplicationCursor:
        """The durable end of the log — where a fresh tail would start."""
        with self._lock:
            return self._end_cursor_locked()

    def _end_cursor_locked(self) -> ReplicationCursor:
        if not self._segments:
            return ReplicationCursor(self._next_index, _DATA_START)
        tail = self._segments[-1]
        if tail.get("sealed") or self._active is None:
            return ReplicationCursor(int(tail["index"]),
                                     int(tail["end_offset"]))
        return ReplicationCursor(int(tail["index"]),
                                 self._active.durable_end)

    def cursor_for_version(self, version: int) -> ReplicationCursor:
        """The earliest retained cursor whose suffix covers ``> version``.

        Used at bootstrap: the replica restored a snapshot at ``version``
        and needs every later record; sealed segments that end at or
        before it are skipped entirely (their records would only be
        dropped by the version-dedup on apply anyway).
        """
        with self._lock:
            for entry in self._segments:
                if entry.get("sealed") and int(entry["end_version"]) \
                        <= version:
                    continue
                return ReplicationCursor(int(entry["index"]), _DATA_START)
            return self._end_cursor_locked()

    # -- appends -------------------------------------------------------

    def append(self, entry: Tuple) -> None:
        """Append one journal record ``(version, op, *args)``."""
        record = encode_record(entry)
        with self._lock:
            self._check_open()
            self._extend_run_locked([entry], record, [0, len(record)])

    def extend(self, entries: List[Tuple]) -> None:
        """Append a run of records under one lock acquisition.

        Each record is framed once, the run lands as (at most one
        buffered write per segment crossed), the rotation threshold
        still honoured mid-run.  Durability still requires
        :meth:`flush`.
        """
        if not entries:
            return
        records = [encode_record(entry) for entry in entries]
        offsets = [0]
        for record in records:
            offsets.append(offsets[-1] + len(record))
        blob = b"".join(records)
        with self._lock:
            self._check_open()
            self._extend_run_locked(list(entries), blob, offsets)

    def extend_run(self, entries: List[Tuple], blob: bytes,
                   offsets: List[int]) -> None:
        """Append a pre-framed byte run as one batch (replica fast path).

        ``entries`` are the decoded records, ``offsets`` their frame
        start offsets into ``blob`` plus an end sentinel (the shape
        ``decode_frames(..., with_spans=True)`` returns — ``offsets``
        may address a suffix of the decode, with ``offsets[-1]`` the
        end of the last frame).  The shipped bytes are journaled
        verbatim: no re-encode, one lock acquisition, one buffered
        write per segment crossed.  The caller vouches that each span
        is :func:`encode_record` of its entry; frames are CRC-checked
        again on every later read, so a lying caller is caught at read
        time, not silently replayed.
        """
        if not entries:
            return
        if len(offsets) != len(entries) + 1:
            raise StorageError(
                "extend_run needs one frame span per entry plus the end "
                "sentinel: {} entries, {} offsets".format(
                    len(entries), len(offsets)))
        with self._lock:
            self._check_open()
            self._extend_run_locked(list(entries), blob, offsets)

    def _extend_run_locked(self, entries: List[Tuple], blob: bytes,
                           offsets: List[int]) -> None:  # guarded-by: _lock
        view = memoryview(blob)
        count = len(entries)
        position = 0
        while position < count:
            if self._active is None:
                self._open_fresh_segment()
            assert self._active is not None
            room = self.segment_bytes - self._active_bytes
            cut = position
            chunk = 0
            while cut < count and chunk < room:
                chunk += offsets[cut + 1] - offsets[cut]
                cut += 1
            self._active.append_blob(
                bytes(view[offsets[position]:offsets[cut]]),
                cut - position)
            self._active_bytes += chunk
            self._last_version = int(entries[cut - 1][0])
            self._segments[-1]["end_version"] = self._last_version
            if self._active_bytes >= self.segment_bytes:
                self._seal_active_locked()
            position = cut

    def flush(self) -> None:
        """Flush (and fsync, per policy) the active segment."""
        with self._lock:
            self._check_open()
            if self._active is not None:
                self._active.flush()
                self._segments[-1]["end_offset"] = self._active.durable_end

    def seal_tail(self) -> None:
        """Flush and seal the active segment (promote/rotation barrier).

        The next append opens a fresh segment; until then the log has no
        active segment and :meth:`end_cursor` points at the sealed tail.
        """
        with self._lock:
            self._check_open()
            if self._active is not None:
                self._seal_active_locked()

    def _seal_active_locked(self) -> None:  # guarded-by: _lock
        assert self._active is not None
        self._active.flush()
        tail = self._segments[-1]
        tail["end_offset"] = self._active.durable_end
        tail["end_version"] = self._last_version
        tail["sealed"] = True
        self._active.close()
        self._active = None
        self._write_manifest()

    def sync_from(self, entries: List[Tuple], snapshot_version: int) -> None:
        """Reconcile with the generation WAL's scanned ``entries`` on open.

        The generation WAL is the durable truth for ``(snapshot_version,
        now]``.  Records it has that the segment log lacks (a crash took
        the segment tail, or replication was just enabled) are copied in;
        a segment log *ahead* of it (the primary's WAL lost a flushed
        suffix) or *behind the snapshot* (an unhealed gap) is discarded
        via :meth:`reset_base` — replicas that applied the lost records
        must re-bootstrap rather than tail across rewritten history.
        """
        with self._lock:
            self._check_open()
            last_durable = int(entries[-1][0]) if entries \
                else snapshot_version
            if self._last_version > last_durable \
                    or self._last_version < snapshot_version:
                self._reset_base_locked(snapshot_version)
            for entry in entries:
                if int(entry[0]) <= self._last_version:
                    continue
                if self._active is None:
                    self._open_fresh_segment()
                assert self._active is not None
                self._active.append(entry)
                self._active_bytes += len(encode_record(entry))
                self._last_version = int(entry[0])
                self._segments[-1]["end_version"] = self._last_version
                if self._active_bytes >= self.segment_bytes:
                    self._seal_active_locked()
            if self._active is not None:
                self._active.flush()
                self._segments[-1]["end_offset"] = self._active.durable_end
            self._write_manifest()

    # -- retention -----------------------------------------------------

    def archive_through(self, version: int) -> int:
        """Archive sealed segments fully folded into snapshot ``version``.

        Returns the number archived.  The active segment never moves; a
        cursor into an archived segment gaps on its next read, which is
        the signal for that replica to re-bootstrap.
        """
        with self._lock:
            self._check_open()
            return self._archive_locked(
                lambda entry: int(entry["end_version"]) <= version)

    def reset_base(self, version: int) -> None:
        """Discard the whole retained log; restart after ``version``.

        Called when the log can no longer promise a contiguous suffix
        (degraded-mode heal, a rewound primary).  Every outstanding
        cursor will gap — fail-stop for tailing replicas, which then
        re-bootstrap from the snapshot that ``version`` identifies.
        """
        with self._lock:
            self._check_open()
            self._reset_base_locked(version)

    def _reset_base_locked(self, version: int) -> None:  # guarded-by: _lock
        if self._active is not None:
            self._seal_active_locked()
        self._archive_locked(lambda entry: True)
        # Always burn the upcoming segment index, even when the log was
        # empty and there was nothing to seal: an empty log's
        # ``cursor_for_version`` hands out a cursor into the *next*
        # segment speculatively, and that cursor predates whatever this
        # reset is hiding (a degraded window folded straight into the
        # snapshot).  Burning the index makes it gap instead of silently
        # resuming past the hole.
        self._next_index += 1
        self._base_version = version
        self._last_version = version
        self._write_manifest()

    def _archive_locked(self, should_archive: Any) -> int:  # guarded-by: _lock
        archive_dir = os.path.join(self.directory, ARCHIVE_DIRNAME)
        moved = 0
        kept: List[Dict[str, Any]] = []
        for entry in self._segments:
            if entry.get("sealed") and should_archive(entry):
                os.makedirs(archive_dir, exist_ok=True)
                name = str(entry["name"])
                os.replace(os.path.join(self.directory, name),
                           os.path.join(archive_dir, name))
                moved += 1
            else:
                kept.append(entry)
        if moved:
            self._segments = kept
            self._write_manifest()
        return moved

    # -- reads ---------------------------------------------------------

    def read_from(self, cursor: ReplicationCursor,
                  max_bytes: int = 1 << 20) -> ShipResult:
        """The raw CRC-framed byte run at ``cursor``, whole frames only.

        Walks frames (validating each CRC — a corrupt retained segment is
        a primary-side fail-stop, not something to ship) until the
        durable end of the log or ``max_bytes``, crossing sealed-segment
        boundaries.  Raises :class:`ReplicationCursorGapError` when the
        cursor predates the first retained segment.
        """
        with self._lock:
            self._check_open()
            segments = [dict(entry) for entry in self._segments]
            active_durable = self._active.durable_end \
                if self._active is not None else None
            next_index = self._next_index
        if not segments:
            if cursor.segment < next_index:
                raise ReplicationCursorGapError(cursor.token(), next_index)
            return ShipResult(b"", cursor, True)
        first = int(segments[0]["index"])
        last = int(segments[-1]["index"])
        if cursor.segment < first:
            raise ReplicationCursorGapError(cursor.token(), first)
        if cursor.segment > last or (cursor.segment == last
                                     and cursor.offset > self._limit_of(
                                         segments[-1], active_durable)):
            raise ReplicationError(
                "replication cursor {} is beyond the log end".format(
                    cursor.token()))
        by_index = {int(entry["index"]): entry for entry in segments}
        chunks: List[bytes] = []
        budget = max(_FRAME.size + 1, max_bytes)
        segment, offset = cursor.segment, cursor.offset
        while True:
            entry = by_index[segment]
            limit = self._limit_of(entry, active_durable)
            if offset < limit and budget > 0:
                data, offset = self._read_frames(
                    str(entry["name"]), offset, limit, budget)
                if data:
                    chunks.append(data)
                    budget -= len(data)
            if offset >= limit:
                if entry.get("sealed") and segment + 1 in by_index:
                    segment, offset = segment + 1, _DATA_START
                    continue
                at_end = True
                break
            at_end = False  # budget exhausted mid-segment
            break
        return ShipResult(b"".join(chunks),
                          ReplicationCursor(segment, offset), at_end)

    @staticmethod
    def _limit_of(entry: Dict[str, Any],
                  active_durable: Optional[int]) -> int:
        if not entry.get("sealed") and active_durable is not None:
            return active_durable
        return int(entry["end_offset"])

    def _read_frames(self, name: str, start: int, limit: int,
                     budget: int) -> Tuple[bytes, int]:
        """Whole CRC-checked frames from ``start`` toward ``limit``.

        One bulk read of (at most) the byte budget, then an in-memory
        frame walk — the per-frame stream round trips this replaces were
        the primary-side hot spot of replica catch-up.  A run is cut at
        the last whole frame inside the window, except that a single
        frame larger than the whole budget is shipped alone: a poll must
        always make progress, or a record bigger than ``max_bytes``
        would wedge every replica forever.
        """
        path = os.path.join(self.directory, name)
        span = limit - start
        want = min(span, max(budget, _FRAME.size + 1))
        try:
            with open(path, "rb") as stream:
                stream.seek(start)
                blob = stream.read(want)
                if len(blob) < want:
                    raise ReplicationCorruptionError(
                        "{} truncated below its durable end at byte "
                        "{}".format(name, start + len(blob)))
                view = memoryview(blob)
                total = len(blob)
                end = 0
                while end < total:
                    if end + _FRAME.size > total:
                        if total == span:
                            raise ReplicationCorruptionError(
                                "{} truncated below its durable end at "
                                "byte {}".format(name, start + end))
                        break  # header straddles the budget window
                    length, crc = _FRAME.unpack_from(blob, end)
                    frame_end = end + _FRAME.size + length
                    if frame_end > total:
                        if total == span:
                            raise ReplicationCorruptionError(
                                "{} record at byte {} failed crc".format(
                                    name, start + end))
                        if end == 0:
                            # One frame bigger than the budget window:
                            # fetch its remainder and ship it whole.
                            if start + frame_end > limit:
                                raise ReplicationCorruptionError(
                                    "{} record at byte {} failed "
                                    "crc".format(name, start))
                            rest = stream.read(frame_end - total)
                            if len(rest) < frame_end - total:
                                raise ReplicationCorruptionError(
                                    "{} truncated below its durable end "
                                    "at byte {}".format(name,
                                                        start + total))
                            blob = blob + rest
                            view = memoryview(blob)
                            total = len(blob)
                            continue
                        break  # frame straddles the budget window
                    payload = view[end + _FRAME.size:frame_end]
                    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                        raise ReplicationCorruptionError(
                            "{} record at byte {} failed crc".format(
                                name, start + end))
                    end = frame_end
        except OSError as exc:
            raise ReplicationCorruptionError(
                "cannot read segment {}: {}".format(name, exc)) from exc
        return (blob if end == len(blob) else blob[:end]), start + end

    def iter_entries(self, after_version: int = -1) -> Iterator[Tuple]:
        """Decode retained records with ``version > after_version``.

        Replays the log locally (replica reopen, promote) through the
        same scan path crash recovery uses — sealed segments are read up
        to their recorded durable length, the active one through its
        intact prefix.
        """
        with self._lock:
            self._check_open()
            if self._active is not None:
                self._active.flush()
                self._segments[-1]["end_offset"] = self._active.durable_end
            segments = [dict(entry) for entry in self._segments]
        for entry in segments:
            path = os.path.join(self.directory, str(entry["name"]))
            records, durable_end, _ = scan_wal(path)
            if entry.get("sealed") and durable_end < int(entry["end_offset"]):
                raise ReplicationCorruptionError(
                    "sealed segment {} readable only to byte {} of "
                    "{}".format(entry["name"], durable_end,
                                entry["end_offset"]))
            for record in records:
                if int(record[0]) > after_version:
                    yield record

    # -- verification --------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Offline CRC scrub of every retained segment + the manifest.

        Returns ``{"ok": bool, "segments": [...], "first_corrupt":
        {...}|None}``; a torn active tail is reported but does not fail
        the scrub (it is the documented crash artifact — reopen truncates
        it), while any CRC mismatch or a sealed segment shorter than its
        recorded durable length does.
        """
        with self._lock:
            self._check_open()
            if self._active is not None:
                self._active.flush()
                self._segments[-1]["end_offset"] = self._active.durable_end
            segments = [dict(entry) for entry in self._segments]
        report: Dict[str, Any] = {"ok": True, "segments": [],
                                  "first_corrupt": None}
        for entry in segments:
            name = str(entry["name"])
            limit = int(entry["end_offset"]) if entry.get("sealed") else None
            records, durable_end, finding = scrub_wal_file(
                os.path.join(self.directory, name), limit=limit)
            if finding is None and limit is not None \
                    and durable_end < limit:
                finding = {"kind": "corrupt", "record": records,
                           "offset": durable_end,
                           "reason": "sealed segment shorter than its "
                                     "recorded durable length"}
            item = {"name": name, "records": records,
                    "durable_end": durable_end, "finding": finding}
            report["segments"].append(item)
            if finding is not None and finding["kind"] == "corrupt" \
                    and report["first_corrupt"] is None:
                report["ok"] = False
                report["first_corrupt"] = dict(finding, segment=name)
        return report

    # -- lifecycle -----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                "segment log {} is closed".format(self.directory))

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._active is not None:
                try:
                    self._active.flush()
                    self._segments[-1]["end_offset"] = \
                        self._active.durable_end
                    self._write_manifest()
                finally:
                    self._active.close()
                    self._active = None
            release_resource(self._leak_token)

    def __enter__(self) -> "WalSegments":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return "WalSegments<{}, {} retained, base={}, last={}{}>".format(
            self.directory, len(self._segments), self._base_version,
            self._last_version, ", closed" if self._closed else "")


def decode_frames(data: bytes, with_spans: bool = False) -> Any:
    """Decode a shipped byte run back into journal entries, CRC-checked.

    The replica-side mirror of :meth:`WalSegments.read_from`: any torn or
    corrupt frame (a ship cut mid-payload, a flipped bit in transit)
    raises :class:`ReplicationCorruptionError` — the batch is rejected
    whole, never partially applied.

    With ``with_spans=True`` returns ``(entries, offsets)`` where
    ``offsets`` holds each frame's start offset into ``data`` plus an
    end sentinel (``len(entries) + 1`` values) — the shape
    :meth:`WalSegments.extend_run` takes, so a replica can journal the
    verified shipped bytes verbatim instead of re-encoding records it
    just decoded.
    """
    starts: List[int] = []
    payloads: List[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME.size:
            raise ReplicationCorruptionError(
                "shipped run torn mid-frame at byte {} of {}".format(
                    offset, total))
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        payload = data[start:start + length]
        if len(payload) < length:
            raise ReplicationCorruptionError(
                "shipped run torn mid-payload at byte {} of {}".format(
                    offset, total))
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ReplicationCorruptionError(
                "shipped record at byte {} failed crc".format(offset))
        starts.append(offset)
        payloads.append(payload)
        offset = start + length
    if not payloads:
        return ([], [len(data)]) if with_spans else []
    # One parser call for the whole verified run (each payload is a JSON
    # array, so the concatenation is itself one array of arrays) — the
    # hot path of replica catch-up.  Only on failure does the per-frame
    # fallback below re-parse to attribute the error to a byte offset.
    try:
        decoded_run: Optional[List[Any]] = json.loads(
            b"[" + b",".join(payloads) + b"]")
    except (UnicodeDecodeError, ValueError):
        decoded_run = None
    entries: List[Tuple] = []
    for position, payload in enumerate(payloads):
        if decoded_run is not None:
            decoded = decoded_run[position]
        else:
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ReplicationCorruptionError(
                    "shipped record at byte {} is not valid JSON: "
                    "{}".format(starts[position], exc)) from exc
        if not isinstance(decoded, list) or len(decoded) < 2:
            raise ReplicationCorruptionError(
                "shipped record at byte {} has no (version, op) "
                "prelude".format(starts[position]))
        entries.append(tuple(decoded))
    if with_spans:
        starts.append(total)
        return entries, starts
    return entries
