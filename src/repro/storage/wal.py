"""The write-ahead log: durable append of the graph mutation stream.

The structural mutation journal :class:`~repro.graph.graph.MultiRelationalGraph`
already maintains for its compact snapshots is *exactly* the event stream a
write-ahead log needs — this module gives it a durable file form.

Record framing
--------------
The file starts with an 8-byte magic (``RPWAL001``).  Each record is::

    +----------------+----------------+----------------------+
    | length: u32 LE | crc32:  u32 LE | payload (JSON, utf-8)|
    +----------------+----------------+----------------------+

``length`` counts payload bytes only; ``crc32`` is :func:`zlib.crc32` of the
payload.  The payload is the mutation entry ``(version, op, *args)`` encoded
as a compact JSON array, e.g. ``[17,"+e","a","knows","b"]`` or
``[18,"pv","a",{"age":29}]``.

Crash consistency
-----------------
Appends are strictly sequential, so after a crash (or a ``kill -9``) the
file is a valid prefix followed by at most one torn record.  Recovery
(:func:`scan_wal`) walks records until the first incomplete frame, short
payload, or CRC mismatch, and reports the byte offset of the last intact
record; :class:`WriteAheadLog` truncates the torn tail before appending
again.  Nothing after the durable prefix is ever replayed — losing the tail
that was never fsynced is the documented contract, silently corrupting
state is not.

Durability batching
-------------------
``sync="always"`` fsyncs every append (slowest, loses nothing),
``sync="batch"`` fsyncs every ``batch_size`` records and on ``flush()``/
``close()`` (the default — bounded loss window, near-sequential-write
throughput), ``sync="none"`` never fsyncs (tests / bulk loads; the OS
decides).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import IO, List, Optional, Tuple

from repro.concurrency import ordered_lock, release_resource, track_resource
from repro.errors import StorageError
from repro.faults import fault_hook, fault_point

__all__ = ["WAL_MAGIC", "WriteAheadLog", "scan_wal", "encode_record",
           "check_loggable"]

WAL_MAGIC = b"RPWAL001"

_FRAME = struct.Struct("<II")  # payload length, payload crc32

#: The scalar types the JSON framing round-trips with identity preserved.
#: Tuples would silently come back as lists and lose hash identity — the
#: exact class of bug the triple-CSV layer had with ints — so they are
#: rejected at append time instead.
_SCALARS = (str, int, float, bool, type(None))


def check_loggable(entry: Tuple) -> None:
    """Reject entries the JSON framing cannot round-trip faithfully.

    Vertex and label identifiers must be JSON scalars (str/int/float/bool/
    None); property maps must be JSON-encodable dicts.  Raises
    :class:`StorageError` naming the offending value.
    """
    for arg in entry:
        if isinstance(arg, _SCALARS):
            continue
        if isinstance(arg, dict):
            try:
                json.dumps(arg)
            except (TypeError, ValueError) as exc:
                raise StorageError(
                    "property map {!r} is not JSON-serializable: {}".format(
                        arg, exc)) from exc
            continue
        raise StorageError(
            "cannot log {!r}: vertex/label ids must be JSON scalars "
            "(str, int, float, bool or None) to round-trip with identity "
            "preserved".format(arg))


def encode_record(entry: Tuple) -> bytes:
    """One framed record (length + crc + JSON payload) for ``entry``."""
    check_loggable(entry)
    payload = json.dumps(list(entry), separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> Tuple:
    data = json.loads(payload.decode("utf-8"))
    return tuple(data)


def scan_wal(path: str) -> Tuple[List[Tuple], int, bool]:
    """Read every intact record: ``(entries, durable_end, tail_torn)``.

    ``durable_end`` is the byte offset just past the last intact record —
    the truncation point a writer must restore before appending.
    ``tail_torn`` is True when trailing bytes past that offset were found
    (a crash mid-append); the torn bytes are *not* decoded.

    A missing file yields ``([], 0, False)``; a file whose *header* is bad
    raises :class:`StorageError` (that is corruption, not a torn tail).
    """
    if not os.path.exists(path):
        return [], 0, False
    entries: List[Tuple] = []
    with open(path, "rb") as stream:
        magic = stream.read(len(WAL_MAGIC))
        if len(magic) < len(WAL_MAGIC):
            # Shorter than the magic: a writer died creating the file.
            return [], 0, len(magic) > 0
        if magic != WAL_MAGIC:
            raise StorageError(
                "{}: not a write-ahead log (bad magic {!r})".format(
                    path, magic))
        durable_end = len(WAL_MAGIC)
        while True:
            frame = stream.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                return entries, durable_end, len(frame) > 0
            length, crc = _FRAME.unpack(frame)
            payload = stream.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return entries, durable_end, True
            try:
                entries.append(_decode_payload(payload))
            except ValueError:
                # CRC-valid but undecodable payload: corruption, stop at
                # the durable prefix exactly like a torn frame.
                return entries, durable_end, True
            durable_end = stream.tell()


class WriteAheadLog:
    """An append-only, CRC-framed, fsync-batched mutation log.

    Opening repairs the file: a torn tail left by a crash is truncated back
    to the durable prefix, so appends always extend a valid log.  Entries
    accepted by :meth:`append` are *pending* until the next fsync point;
    ``records_logged`` counts everything appended this session,
    ``records_durable`` only what has been fsynced.
    """

    def __init__(self, path: str, sync: str = "batch", batch_size: int = 64,
                 scanned: Optional[Tuple[int, bool]] = None):
        if sync not in ("always", "batch", "none"):
            raise StorageError(
                "unknown sync policy {!r}; expected 'always', 'batch' "
                "or 'none'".format(sync))
        if batch_size < 1:
            raise StorageError("batch_size must be >= 1")
        self.path = path
        self.sync = sync
        self.batch_size = batch_size
        self.records_logged = 0
        self.records_durable = 0
        self._pending: List[bytes] = []
        self._pending_records = 0
        #: Set (to a reason string) when a failed append could not even be
        #: rolled back to the durable prefix: the on-disk tail is torn and
        #: this handle refuses further writes.  Reopening the path repairs
        #: the file through the normal torn-tail recovery.
        self._broken: Optional[str] = None
        # Serializes append/flush/close: the service tier can drive a
        # mutation (appending) while a checkpoint flushes the same log
        # from another thread.  Witness-ordered: storage.wal sits below
        # storage.store and above faults.plan in the lock hierarchy.
        self._lock = ordered_lock("storage.wal")
        if scanned is None:
            # Callers that already ran scan_wal (for the replay entries)
            # pass its (durable_end, tail_torn) so the file — which can be
            # the bulk of a reopen — is not read and decoded twice.
            _, durable_end, tail_torn = scan_wal(path)
        else:
            durable_end, tail_torn = scanned
        exists = os.path.exists(path)
        self._stream: Optional[IO[bytes]] = open(path, "r+b" if exists else "w+b")
        self._leak_token = track_resource("wal", path)
        if not exists or durable_end == 0:
            self._stream.seek(0)
            self._stream.truncate(0)
            self._stream.write(WAL_MAGIC)
            self._fsync()
            durable_end = len(WAL_MAGIC)
        elif tail_torn:
            self._stream.truncate(durable_end)
            self._fsync()
            self._stream.seek(durable_end)
        else:
            self._stream.seek(durable_end)
        #: Byte offset of the durable prefix: everything before it has
        #: been written *and* fsynced.  A failed flush rolls the file back
        #: to exactly this offset, so a retried flush re-writes the whole
        #: pending batch from here — never double-writing a prefix the
        #: failed attempt partially got out.
        self._durable_end = durable_end

    # ------------------------------------------------------------------

    def append(self, entry: Tuple) -> None:
        """Buffer one ``(version, op, *args)`` entry; flush per the policy."""
        self.append_blob(encode_record(entry), 1)

    def append_blob(self, blob: bytes, records: int) -> None:
        """Buffer a pre-framed byte run holding ``records`` frames.

        The replica-apply fast path: a shipped run arrives already
        length+CRC framed and verified, so re-journaling it must not
        pay a lock round-trip (or a re-encode) per record — the whole
        run lands as one buffered write.  The flush policy fires once:
        ``sync="always"`` still flushes, ``sync="batch"`` flushes when
        the pending batch has reached ``batch_size`` records.
        """
        with self._lock:
            if self._broken is not None:
                raise StorageError(
                    "write-ahead log {} is broken ({}); reopen the store "
                    "to recover the durable prefix".format(
                        self.path, self._broken))
            if self._stream is None:
                raise StorageError(
                    "write-ahead log {} is closed".format(self.path))
            self._pending.append(blob)
            self._pending_records += records
            self.records_logged += records
            if self.sync == "always" \
                    or self._pending_records >= self.batch_size:
                self._flush_pending()

    def flush(self) -> None:
        """Write buffered records and (unless ``sync='none'``) fsync them."""
        with self._lock:
            if self._stream is None and self._broken is None:
                raise StorageError(
                    "write-ahead log {} is closed".format(self.path))
            self._flush_pending()

    def _flush_pending(self) -> None:  # guarded-by: _lock
        """Write+fsync the pending batch transactionally; caller holds the lock.

        The batch only counts as durable — and only leaves ``_pending`` —
        after the fsync succeeds.  Any failure (a real ``ENOSPC``/``EIO``
        or an injected one, possibly after a *short* write that left a
        partial frame in the file) rolls the file back to the durable
        prefix and re-raises as :class:`StorageError`: the pending batch
        stays queued intact, so a later retry starts from a clean prefix
        and can never double-write the bytes the failed attempt got out.
        """
        if self._broken is not None:
            raise StorageError(
                "write-ahead log {} is broken ({}); reopen the store to "
                "recover the durable prefix".format(self.path, self._broken))
        if not self._pending:
            return
        assert self._stream is not None
        buffer = b"".join(self._pending)
        try:
            fault = fault_hook("wal.write")
            if fault is not None and fault.kind in ("eio", "enospc"):
                # Model a short write: part of the batch reaches the file
                # (a torn frame on disk), then the device errors out.
                short = int(len(buffer) * fault.fraction)
                if short:
                    self._stream.write(buffer[:short])
                    self._stream.flush()
                raise fault.to_error()
            self._stream.write(buffer)
            fault_point("wal.fsync")
            self._fsync()
        except OSError as exc:
            self._rewind_to_durable()
            raise StorageError(
                "write-ahead log {}: append failed ({}); the log was "
                "rolled back to its durable prefix".format(
                    self.path, exc)) from exc
        self._durable_end += len(buffer)
        flushed = self._pending_records
        self._pending = []
        self._pending_records = 0
        self.records_durable += flushed

    def _rewind_to_durable(self) -> None:  # guarded-by: _lock
        """Truncate the file back to the durable prefix after a failed flush.

        Reopens the path rather than reusing the failed stream: the
        ``BufferedWriter`` may still hold part of the failed batch, and a
        truncate through it would first try to flush those very bytes.
        If even the rewind fails the handle is poisoned (``_broken``) —
        the torn tail stays on disk, where :func:`scan_wal` recovery
        truncates it on the next open.
        """
        stream, self._stream = self._stream, None
        if stream is not None:
            try:
                stream.close()
            except OSError:
                pass  # the buffered partial batch may fail to flush again
        try:
            fault_point("wal.rewind")
            reopened = open(self.path, "r+b")
        except OSError as exc:
            self._broken = "rollback failed: {}".format(exc)
            return
        try:
            reopened.truncate(self._durable_end)
            reopened.flush()
            os.fsync(reopened.fileno())
            reopened.seek(self._durable_end)
        except OSError as exc:
            self._broken = "rollback failed: {}".format(exc)
            try:
                reopened.close()
            except OSError:
                pass
            return
        self._stream = reopened

    def _fsync(self) -> None:
        assert self._stream is not None
        self._stream.flush()
        if self.sync != "none":
            os.fsync(self._stream.fileno())

    def tell(self) -> int:
        """Durable byte size of the log (buffered records excluded)."""
        with self._lock:
            if self._stream is None:
                return os.path.getsize(self.path)
            return self._stream.tell()

    @property
    def pending(self) -> int:
        """Records appended but not yet flushed to the file."""
        return self._pending_records

    @property
    def broken(self) -> Optional[str]:
        """Why this handle refuses writes, or None while healthy."""
        return self._broken

    @property
    def durable_end(self) -> int:
        """Byte offset of the durable (written + fsynced) prefix."""
        return self._durable_end

    def close(self) -> None:
        """Flush pending records and close; further appends raise.

        Idempotent — and the flush-before-close ordering is the
        durability contract ``sync="batch"`` callers rely on: records
        appended below ``batch_size`` must hit the disk here, not be
        silently dropped with the stream (regression-pinned by
        ``tests/test_storage.py``).  A flush failure still closes the
        handle (the durable prefix on disk stays valid) before the
        :class:`StorageError` propagates; a *broken* handle closes
        quietly — its error already surfaced when the rollback failed,
        and reopening the path runs torn-tail recovery.
        """
        with self._lock:
            if self._stream is None and self._broken is None:
                return
            try:
                if self._broken is None:
                    self._flush_pending()
            finally:
                self._pending = []
                self._pending_records = 0
                self._broken = None
                stream, self._stream = self._stream, None
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass  # durable prefix is already fsynced
                release_resource(self._leak_token)

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._stream is None else "open"
        return "WriteAheadLog<{} {}, {} logged, {} durable, sync={}>".format(
            self.path, state, self.records_logged, self.records_durable,
            self.sync)
