"""Durable graphs: WAL + snapshot store behind one open/checkpoint/close API.

A persistent store is a directory::

    mystore/
      manifest.json          which generation is live (atomically replaced)
      snapshot-000003.rcsr   CSR snapshot of generation 3 (mmap-reopened)
      wal-000003.log         mutations since that snapshot (CRC-framed)

Lifecycle
---------
* :meth:`PersistentGraph.create` seeds generation 1 from a (possibly empty)
  in-memory graph and attaches itself as a WAL sink: from then on every
  structural and property mutation of that graph is appended to the log.
* :meth:`PersistentGraph.open` is the cheap path back: it **maps** the
  manifest's snapshot (``np.memmap`` — CSR pages fault in lazily) and
  replays the WAL suffix through the existing
  :class:`~repro.graph.compact.DeltaAdjacency` overlay machinery.  The
  reopened store serves RPQ/pairs queries immediately, without rebuilding
  the dict store or loading the full CSR.
* Mutating a lazily-opened store (or asking for :meth:`graph`)
  **materializes** the dict-indexed
  :class:`~repro.graph.graph.MultiRelationalGraph` once, installs the
  already-mapped snapshot view as its compact-snapshot cache (so the first
  compact query after materialization is still rebuild-free), and resumes
  logging.
* :meth:`checkpoint` folds base + overlay into a fresh dense snapshot
  (generation ``g+1``), starts an empty generation-``g+1`` WAL, atomically
  swaps the manifest, and only then deletes generation ``g`` — a crash at
  any point leaves a manifest naming one consistent (snapshot, WAL) pair.
* :meth:`close` flushes the log and detaches; reopening recovers exactly
  the durable prefix (torn tail records are truncated, never replayed).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.concurrency import ordered_rlock, release_resource, track_resource
from repro.errors import StorageError, StoreDegradedError
from repro.faults import fault_point
from repro.graph.compact import _CACHE_ATTR, DeltaAdjacency, adjacency_snapshot
from repro.graph.graph import MultiRelationalGraph
from repro.storage.segments import (
    SEGMENTS_DIRNAME,
    SEGMENTS_MANIFEST_NAME,
    ReplicationCursor,
    ShipResult,
    WalSegments,
)
from repro.storage.snapshots import (
    open_adjacency_snapshot,
    write_adjacency_snapshot,
)
from repro.storage.wal import WriteAheadLog, check_loggable, scan_wal

__all__ = ["PersistentGraph"]

MANIFEST_NAME = "manifest.json"

_PROPERTY_OPS = ("pv", "pe")


def _write_manifest(directory: str, manifest: Dict[str, Any]) -> None:
    """Write the manifest durably: tmp file + fsync + atomic rename + dirsync.

    Failure (real or injected at ``manifest.rename``) raises
    :class:`StorageError` with the tmp file removed — the previously
    published manifest stays live, so a crashed or failed swap can never
    leave the store pointing at a half-written generation.
    """
    tmp_path = os.path.join(directory, MANIFEST_NAME + ".tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, indent=2, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        fault_point("manifest.rename")
        os.replace(tmp_path, os.path.join(directory, MANIFEST_NAME))
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise StorageError(
            "{}: manifest publish failed ({})".format(directory, exc)
        ) from exc


def _read_manifest(directory: str) -> Dict[str, Any]:
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise StorageError(
            "{} is not a graph store (no {})".format(directory, MANIFEST_NAME))
    try:
        with open(path, "r", encoding="utf-8") as stream:
            manifest = json.load(stream)
    except ValueError as exc:
        raise StorageError("{}: manifest is corrupt: {}".format(path, exc)) \
            from exc
    if manifest.get("format") != 1:
        raise StorageError("{}: unsupported store format {!r}".format(
            path, manifest.get("format")))
    return manifest


class _CompactGraphAdapter:
    """The minimal graph surface the compact RPQ kernels read.

    :func:`repro.graph.compact.adjacency_snapshot` wants a cached snapshot
    attribute, a matching ``version()``, a journal, and ``labels()`` for
    DFA compilation.  This shim pins one already-built view (mmap base or
    WAL-replayed overlay) under that contract so the kernels run verbatim
    on a store that never materialized its dict indices.
    """

    def __init__(self) -> None:
        self._view = None

    def pin(self, view: Any) -> "_CompactGraphAdapter":
        self._view = view
        setattr(self, _CACHE_ATTR, view)
        return self

    def version(self) -> int:
        return self._view.version

    def labels(self) -> FrozenSet[Hashable]:
        return frozenset(self._view.label_ids)

    def journal_since(self, version: int) -> List[Any]:
        return []

    def prune_journal(self, version: int) -> None:
        pass


class _WalSink:
    """The mutation sink attached to a store's graph.

    ``precheck`` runs *before* the graph mutates (see
    :meth:`MultiRelationalGraph._wal_precheck`): an entry the JSON framing
    cannot represent — or a store already in read-only degraded mode —
    is rejected while graph, journal and log still agree.  The call
    itself appends the already-applied mutation to the WAL; if *that*
    append fails the store flips degraded (the triggering mutation stays
    applied in memory and keeps serving; it becomes durable again at the
    healing checkpoint, which folds the live state).
    """

    __slots__ = ("store",)

    def __init__(self, store: "PersistentGraph"):
        self.store = store

    def __call__(self, record: Tuple) -> None:
        try:
            self.store._wal.append(record)
        except StoreDegradedError:
            raise
        except StorageError as exc:
            raise self.store._enter_degraded(str(exc)) from exc
        segments = self.store._segments
        if segments is not None:
            try:
                segments.append(record)
            except (StorageError, OSError) as exc:
                # The shippable log missed a record the WAL took: the
                # store degrades, and the healing checkpoint resets the
                # segment log so no replica can tail across the gap.
                raise self.store._enter_degraded(
                    "segment log append failed: {}".format(exc)) from exc

    def precheck(self, entry: Tuple) -> None:
        self.store._check_writable()
        check_loggable(entry)


class PersistentGraph:
    """One durable multi-relational graph: WAL + mmap'd snapshot + manifest."""

    def __init__(self, directory: str, manifest: Dict[str, Any],
                 wal: WriteAheadLog, sync: str, batch_size: int,
                 mmap: bool):
        self.directory = directory
        self._manifest = manifest
        self._wal = wal
        self._sync = sync
        self._batch_size = batch_size
        self._mmap = mmap
        self._graph: Optional[MultiRelationalGraph] = None
        self._base = None
        self._overlay: Optional[DeltaAdjacency] = None
        self._segments: Optional[WalSegments] = None
        self._vertex_props: Dict[Hashable, Dict[str, Any]] = {}
        self._edge_props: Dict[Tuple, Dict[str, Any]] = {}
        self._adapter = _CompactGraphAdapter()
        self._wal_sink = _WalSink(self)
        self._closed = False
        # Reason string while in read-only degraded mode (WAL writes
        # failed), None while writable.  Sticky until a checkpoint heals.
        self._degraded: Optional[str] = None
        # Serializes lifecycle transitions (materialize / checkpoint /
        # close): the service tier shares one store between query threads
        # and an admin endpoint, and e.g. two first-mutation calls racing
        # materialization must build the dict indices exactly once.
        # Re-entrant (checkpoint's heal path re-enters _enter_degraded)
        # and witness-ordered above storage.wal.
        self._lock = ordered_rlock("storage.store")
        self._recovery: Dict[str, Any] = {"wal_records": 0,
                                          "tail_torn": False}
        self._leak_token = track_resource("store", directory)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, directory: str,
               graph: Optional[MultiRelationalGraph] = None,
               name: str = "", sync: str = "batch",
               batch_size: int = 64,
               replicate: bool = False) -> "PersistentGraph":
        """Initialize a store directory (generation 1) and attach to ``graph``.

        ``graph`` defaults to a fresh empty graph; an existing graph is
        snapshotted as the first generation, so bulk loads should happen
        *before* ``create`` (no per-edge WAL record) and churn after.
        ``replicate=True`` additionally starts the shippable segment log
        (``segments/``) replicas tail; see :mod:`repro.replication`.
        """
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise StorageError(
                "{} already contains a graph store".format(directory))
        if graph is None:
            graph = MultiRelationalGraph(name=name)
        manifest = {
            "format": 1,
            "kind": "multirelational",
            "name": name or graph.name,
            "generation": 1,
            "snapshot": "snapshot-000001.rcsr",
            "wal": "wal-000001.log",
            "snapshot_version": graph.version(),
        }
        view = adjacency_snapshot(graph)
        write_adjacency_snapshot(
            os.path.join(directory, manifest["snapshot"]), view,
            name=manifest["name"], version=graph.version(),
            vertex_properties={v: p for v, p in graph._vertices.items() if p},
            edge_properties={(e.tail, e.label, e.head): p
                             for e, p in graph._edges.items() if p})
        wal = WriteAheadLog(os.path.join(directory, manifest["wal"]),
                            sync=sync, batch_size=batch_size)
        try:
            _write_manifest(directory, manifest)
        except BaseException:
            wal.close()  # the store was never born; don't leak its log
            raise
        store = cls(directory, manifest, wal, sync, batch_size, mmap=True)
        store._graph = graph
        if replicate:
            store._segments = WalSegments(
                os.path.join(directory, SEGMENTS_DIRNAME),
                sync=sync, batch_size=batch_size,
                base_version=graph.version())
        graph.attach_wal_sink(store._wal_sink)
        return store

    @classmethod
    def open(cls, directory: str, materialize: bool = False,
             mmap: bool = True, sync: str = "batch",
             batch_size: int = 64,
             replicate: bool = False) -> "PersistentGraph":
        """Map the latest snapshot and replay the WAL suffix.

        The default is the lazy read path: CSR arrays stay on disk behind
        ``np.memmap`` views, WAL mutations land in a
        :class:`DeltaAdjacency` overlay, and queries run through the
        compact kernels directly.  ``materialize=True`` additionally builds
        the dict store up front (required before mutating; otherwise done
        on the first write).

        The shippable segment log reopens automatically whenever
        ``segments/segments.json`` exists (a store that ever replicated
        must keep its log contiguous — silently mutating past it would
        diverge every replica); ``replicate=True`` starts one fresh.
        Either way the log is reconciled against the scanned WAL before
        anything is served (see :meth:`WalSegments.sync_from`)."""
        manifest = _read_manifest(directory)
        snapshot_path = os.path.join(directory, manifest["snapshot"])
        wal_path = os.path.join(directory, manifest["wal"])
        base, metadata = open_adjacency_snapshot(snapshot_path, mmap=mmap)
        entries, durable_end, tail_torn = scan_wal(wal_path)
        wal = WriteAheadLog(wal_path, sync=sync, batch_size=batch_size,
                            scanned=(durable_end, tail_torn))
        store = cls(directory, manifest, wal, sync, batch_size, mmap)
        store._base = base
        store._vertex_props = dict(metadata.vertex_properties)
        store._edge_props = dict(metadata.edge_properties)
        store._recovery = {"wal_records": len(entries),
                           "tail_torn": tail_torn}
        store._replay(entries)
        segments_dir = os.path.join(directory, SEGMENTS_DIRNAME)
        if replicate or os.path.exists(
                os.path.join(segments_dir, SEGMENTS_MANIFEST_NAME)):
            snapshot_version = int(manifest["snapshot_version"])
            store._segments = WalSegments(
                segments_dir, sync=sync, batch_size=batch_size,
                base_version=snapshot_version)
            store._segments.sync_from(list(entries), snapshot_version)
        if materialize:
            store.graph()
        return store

    # The store is thread-confined during replay (construction time); the
    # sidecar maps and overlay it fills are only published afterwards.
    def _replay(self, entries: Iterable[Tuple[Any, ...]]) -> None:  # reprorace: ignore[unguarded-write]
        """Apply recovered WAL entries: structure to the overlay, property
        merges to the sidecar maps (deletes drop the matching maps)."""
        structural = []
        for entry in entries:
            op = entry[1]
            if op == "pv":
                self._vertex_props.setdefault(entry[2], {}).update(entry[3])
            elif op == "pe":
                self._edge_props.setdefault(
                    (entry[2], entry[3], entry[4]), {}).update(entry[5])
            else:
                structural.append(entry)
                if op == "-v":
                    self._vertex_props.pop(entry[2], None)
                elif op == "-e":
                    self._edge_props.pop((entry[2], entry[3], entry[4]), None)
        if structural:
            overlay = DeltaAdjacency(self._base)
            overlay.apply(structural)
            overlay.version = structural[-1][0]
            self._overlay = overlay

    def close(self) -> None:
        """Flush the log and detach; the store directory is then quiescent.

        Idempotent and thread-safe: a server shutdown may close a store
        from its lifecycle thread while a late request handler does the
        same, and the WAL must be flushed-then-closed exactly once.
        """
        with self._lock:
            if self._closed:
                return
            if self._graph is not None:
                self._graph.detach_wal_sink(self._wal_sink)
            try:
                self._wal.close()
            except StorageError:
                # A degraded store's log may be unable to flush its
                # failed batch; the durable prefix on disk is already
                # consistent, and close must not raise on the way down.
                if self._degraded is None:
                    raise
            finally:
                if self._segments is not None:
                    try:
                        self._segments.close()
                    except (StorageError, OSError):
                        # A lost segment tail is reconciled against the
                        # WAL on the next open (sync_from); teardown
                        # must still complete.
                        pass
                    self._segments = None
                self._base = None
                self._overlay = None
                self._closed = True
                release_resource(self._leak_token)

    def flush(self) -> None:
        """Force pending WAL records to disk (fsync per the sync policy).

        A flush failure is a WAL write failure: the store enters
        read-only degraded mode and raises :class:`StoreDegradedError`.
        """
        self._check_open()
        self._check_writable()
        try:
            self._wal.flush()
        except StorageError as exc:
            raise self._enter_degraded(str(exc)) from exc
        if self._segments is not None:
            try:
                self._segments.flush()
            except (StorageError, OSError) as exc:
                raise self._enter_degraded(
                    "segment log flush failed: {}".format(exc)) from exc

    def __enter__(self) -> "PersistentGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Views and materialization
    # ------------------------------------------------------------------

    def view(self) -> Any:
        """The live compact adjacency: overlay if WAL entries were
        replayed, the (mmap) base otherwise, or the attached graph's own
        snapshot once materialized."""
        self._check_open()
        if self._graph is not None:
            return adjacency_snapshot(self._graph)
        return self._overlay if self._overlay is not None else self._base

    @property
    def materialized(self) -> bool:
        """True once the dict-indexed graph exists in memory."""
        return self._graph is not None

    def graph(self) -> MultiRelationalGraph:
        """The mutable dict-indexed graph, materialized on first use.

        Materialization walks the mapped CSR once to rebuild the hash
        indices, then installs the *same* mapped view as the graph's
        compact-snapshot cache — so compact queries stay rebuild-free —
        and attaches the WAL sink so further mutations are logged.
        """
        with self._lock:
            self._check_open()
            if self._graph is None:
                self._graph = self._materialize()
            return self._graph

    def _materialize(self) -> MultiRelationalGraph:
        view = self._overlay if self._overlay is not None else self._base
        graph = MultiRelationalGraph(name=self._manifest.get("name", ""))
        vertex_of = view.vertex_of
        live = list(view.live_vertex_ids())
        for vertex_id in live:
            graph.add_vertex(vertex_of[vertex_id])
        for label_id, label in enumerate(view.label_of):
            for vertex_id in live:
                tail = vertex_of[vertex_id]
                for neighbor in view.out_neighbors(vertex_id, label_id):
                    graph.add_edge(tail, label, vertex_of[neighbor])
        for vertex, props in self._vertex_props.items():
            if props and graph.has_vertex(vertex):
                graph.add_vertex(vertex, **props)
        for (tail, label, head), props in self._edge_props.items():
            if props and graph.has_edge(tail, label, head):
                graph.add_edge(tail, label, head, **props)
        # Continue the version clock past everything the durable log (and
        # any replica tailing it) has already seen: the rebuild restarted
        # the counter, and reused versions would be dropped by version
        # dedup downstream.
        floor = int(self._manifest["snapshot_version"])
        if self._overlay is not None:
            floor = max(floor, int(self._overlay.version))
        if self._segments is not None:
            floor = max(floor, self._segments.last_version)
        graph.advance_version(floor)
        # Adopt the mapped view as the graph's snapshot cache: the ids it
        # interned stay valid, so the first compact query after
        # materialization slices the same mmap pages instead of rebuilding.
        view.version = graph.version()
        setattr(graph, _CACHE_ATTR, view)
        graph.prune_journal(graph.version())
        graph.attach_wal_sink(self._wal_sink)
        return graph

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                "graph store {} is closed".format(self.directory))

    # ------------------------------------------------------------------
    # Degraded mode (read-only after a WAL write failure)
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the store is read-only after a WAL write failure.

        Queries keep serving the live in-memory state exactly; mutations
        raise :class:`StoreDegradedError` *before* any state changes; a
        successful :meth:`checkpoint` — which folds the live state into a
        fresh generation with a fresh log — heals the store.
        """
        return self._degraded is not None

    @property
    def degraded_reason(self) -> Optional[str]:
        """Why the store went read-only, or None while writable."""
        return self._degraded

    def _enter_degraded(self, reason: str) -> StoreDegradedError:
        """Flip (sticky) into degraded mode; returns the error to raise.

        Takes the store lock: the WAL sink calls this from whichever
        thread's mutation hit the write failure (after the WAL's own lock
        is released), racing any concurrent checkpoint heal.  Re-entrant
        from ``_checkpoint_locked`` — the lock is an RLock.
        """
        with self._lock:
            if self._degraded is None:
                self._degraded = reason
            return StoreDegradedError(self.directory, self._degraded)

    def _check_writable(self) -> None:
        if self._degraded is not None:
            raise StoreDegradedError(self.directory, self._degraded)

    # ------------------------------------------------------------------
    # Reads (lazy-friendly)
    # ------------------------------------------------------------------

    def order(self) -> int:
        """``|V|`` of the live state (overlay-aware, no materialization)."""
        return self.view().num_vertices

    def size(self) -> int:
        """``|E|`` of the live state (overlay-aware, no materialization)."""
        return self.view().num_edges

    def vertices(self) -> FrozenSet[Hashable]:
        view = self.view()
        return frozenset(view.vertex_of[i] for i in view.live_vertex_ids())

    def labels(self) -> FrozenSet[Hashable]:
        return frozenset(self.view().label_ids)

    def vertex_properties(self, vertex: Hashable) -> Dict[str, Any]:
        if self._graph is not None:
            return self._graph.vertex_properties(vertex)
        return dict(self._vertex_props.get(vertex, {}))

    def edge_properties(self, tail: Hashable, label: Hashable,
                        head: Hashable) -> Dict[str, Any]:
        if self._graph is not None:
            return self._graph.edge_properties(tail, label, head)
        return dict(self._edge_props.get((tail, label, head), {}))

    def pairs(self, expression: Any,
              sources: Optional[Iterable[Hashable]] = None,
              targets: Optional[Iterable[Hashable]] = None) -> FrozenSet:
        """RPQ reachability over the durable state.

        ``expression`` is a label expression (:func:`repro.rpq.sym` etc.);
        evaluation runs the compact product-BFS kernel against the mapped
        snapshot (plus overlay), whether or not the store is materialized.
        """
        from repro.rpq.evaluation import rpq_pairs
        self._check_open()
        try:
            fault_point("store.pairs")
        except OSError as exc:
            raise StorageError(
                "{}: read failed ({})".format(self.directory, exc)) from exc
        if self._graph is not None:
            return rpq_pairs(self._graph, expression, sources,
                             targets=targets)
        view = self._overlay if self._overlay is not None else self._base
        return rpq_pairs(self._adapter.pin(view), expression, sources,
                         targets=targets)

    # ------------------------------------------------------------------
    # Mutations (materialize-on-write)
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Hashable, **properties: Any) -> Hashable:
        return self.graph().add_vertex(vertex, **properties)

    def add_edge(self, tail: Hashable, label: Hashable, head: Hashable,
                 **properties: Any) -> Any:
        return self.graph().add_edge(tail, label, head, **properties)

    def remove_edge(self, tail: Hashable, label: Hashable,
                    head: Hashable) -> None:
        self.graph().remove_edge(tail, label, head)

    def remove_vertex(self, vertex: Hashable) -> None:
        self.graph().remove_vertex(vertex)

    def set_vertex_property(self, vertex: Hashable, key: str,
                            value: Any) -> None:
        self.graph().set_vertex_property(vertex, key, value)

    def set_edge_property(self, tail: Hashable, label: Hashable,
                          head: Hashable, key: str, value: Any) -> None:
        self.graph().set_edge_property(tail, label, head, key, value)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Fold live state into a fresh snapshot generation and prune the log.

        Write order is the crash-safety argument: (1) the new snapshot and
        a new empty WAL are written and fsynced under *new* generation
        names, (2) the manifest is atomically replaced to point at them,
        (3) only then is the old generation unlinked.  A crash before (2)
        leaves the old generation live and intact; after (2), the new one.
        Returns the refreshed :meth:`info` dict.
        """
        with self._lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> Dict[str, Any]:  # guarded-by: _lock
        self._check_open()
        if self._degraded is None and self._segments is not None:
            try:
                self._segments.flush()
            except (StorageError, OSError) as exc:
                self._enter_degraded(
                    "segment log flush failed: {}".format(exc))
        if self._degraded is None:
            try:
                self._wal.flush()
            except StorageError as exc:
                # The checkpoint continues as the heal path: the live
                # in-memory state (which includes every entry the log
                # could not take) is folded into the new generation.
                self._enter_degraded(str(exc))
        if self._graph is not None:
            view = adjacency_snapshot(self._graph)
            version = self._graph.version()
            vertex_props = {v: dict(p) for v, p in
                            self._graph._vertices.items() if p}
            edge_props = {(e.tail, e.label, e.head): dict(p) for e, p in
                          self._graph._edges.items() if p}
        else:
            view = self._overlay if self._overlay is not None else self._base
            version = view.version
            vertex_props = self._vertex_props
            edge_props = self._edge_props
        generation = self._manifest["generation"] + 1
        snapshot_name = "snapshot-{:06d}.rcsr".format(generation)
        wal_name = "wal-{:06d}.log".format(generation)
        old_snapshot = self._manifest["snapshot"]
        old_wal_path = self._wal.path
        write_adjacency_snapshot(
            os.path.join(self.directory, snapshot_name), view,
            name=self._manifest.get("name", ""), version=version,
            vertex_properties=vertex_props, edge_properties=edge_props)
        new_wal = WriteAheadLog(os.path.join(self.directory, wal_name),
                                sync=self._sync, batch_size=self._batch_size)
        manifest = dict(self._manifest)
        manifest.update(generation=generation, snapshot=snapshot_name,
                        wal=wal_name, snapshot_version=version)
        try:
            _write_manifest(self.directory, manifest)
        except BaseException:
            # The new generation was never published: the old one stays
            # live, so the just-opened log must not leak its handle.
            new_wal.close()
            raise
        # The new generation is durable and live: retire the old one.
        try:
            self._wal.close()
        except StorageError:
            # A degraded generation's log may refuse its final flush; its
            # durable prefix is superseded by the snapshot just published.
            pass
        was_degraded = self._degraded is not None
        self._wal = new_wal
        self._manifest = manifest
        # Every live entry is folded into the published generation: the
        # store is durable again.
        self._degraded = None
        if self._segments is not None:
            try:
                if was_degraded:
                    # The degraded window may have mutations the segment
                    # log never saw (they are only in the fold just
                    # published).  Resetting gaps every replica cursor,
                    # forcing a re-bootstrap from this snapshot instead
                    # of a silent skip.
                    self._segments.reset_base(version)
                else:
                    self._segments.archive_through(version)
            except (StorageError, OSError) as exc:
                self._enter_degraded(
                    "segment log retention failed: {}".format(exc))
        for stale in (os.path.join(self.directory, old_snapshot),
                      old_wal_path):
            try:
                os.unlink(stale)
            except OSError:
                pass
        if self._graph is None:
            # Lazy stores re-map the folded snapshot: the overlay's work is
            # now baked into dense base arrays.
            base, metadata = open_adjacency_snapshot(
                os.path.join(self.directory, snapshot_name), mmap=self._mmap)
            self._base = base
            self._overlay = None
            self._vertex_props = dict(metadata.vertex_properties)
            self._edge_props = dict(metadata.edge_properties)
        return self.info()

    # ------------------------------------------------------------------
    # Replication feed (primary side)
    # ------------------------------------------------------------------

    @property
    def segments(self) -> Optional[WalSegments]:
        """The shippable segment log, or None when not replicating."""
        return self._segments

    def current_version(self) -> int:
        """The journal version of the live state (what a replica chases)."""
        if self._graph is not None:
            return self._graph.version()
        if self._overlay is not None:
            return int(self._overlay.version)
        return int(self._manifest["snapshot_version"])

    def _check_replicating(self) -> WalSegments:
        if self._segments is None:
            raise StorageError(
                "store {} has no segment log; open it with replicate=True "
                "to serve replication".format(self.directory))
        return self._segments

    def replication_bootstrap(self) -> Tuple[bytes, Dict[str, Any]]:
        """Snapshot bytes + metadata for a replica bootstrap.

        Runs under the store lock so the snapshot file, its manifest
        version, and the start cursor are one consistent cut — a
        concurrent checkpoint cannot swap generations mid-read.  The
        returned cursor covers every record after ``snapshot_version``.
        """
        with self._lock:
            self._check_open()
            segments = self._check_replicating()
            segments.flush()
            snapshot_version = int(self._manifest["snapshot_version"])
            if segments.base_version > snapshot_version:
                # The retained log restarted past the published snapshot
                # (a degraded-heal reset raced this read before its new
                # manifest landed, or direct segment surgery): a
                # bootstrap now would have a hole between snapshot and
                # log.  Refuse rather than ship a silently gapped feed.
                raise StorageError(
                    "replication bootstrap unavailable: snapshot version "
                    "{} predates the retained segment log (base {}); "
                    "checkpoint the store first".format(
                        snapshot_version, segments.base_version))
            path = os.path.join(self.directory, self._manifest["snapshot"])
            with open(path, "rb") as stream:
                data = stream.read()
            meta = {
                "graph": self._manifest.get("name", ""),
                "snapshot": str(self._manifest["snapshot"]),
                "snapshot_version": snapshot_version,
                "cursor": segments.cursor_for_version(
                    snapshot_version).token(),
                "version": max(snapshot_version, segments.last_version),
            }
            return data, meta

    def replication_version(self) -> int:
        """The shipped-log frontier a caught-up replica converges to.

        This is the newest version a replica can *reach* — the last
        record in the segment log (or the snapshot version when the log
        is empty).  Deliberately not :meth:`current_version`: the live
        graph clock advances on no-op mutations that log nothing, so
        measuring replica lag against it would never read zero.
        """
        with self._lock:
            self._check_open()
            segments = self._check_replicating()
            return max(int(self._manifest["snapshot_version"]),
                       segments.last_version)

    def replication_read(self, cursor: ReplicationCursor,
                         max_bytes: int = 1 << 20) -> ShipResult:
        """The CRC-framed WAL suffix at ``cursor`` (durable records only).

        Flushes the segment log first so a tailing replica's lag is
        bounded by the poll interval, not the fsync batch size.
        """
        self._check_open()
        segments = self._check_replicating()
        segments.flush()
        return segments.read_from(cursor, max_bytes=max_bytes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The graph's name from the manifest — no view materialization.

        ``info()`` builds the full adjacency view to report sizes; hot
        metadata consumers (the replication feed stamps the name on
        every WAL ship) must not pay that just for a label.
        """
        return str(self._manifest.get("name", ""))

    def info(self) -> Dict[str, Any]:
        """A JSON-ready summary: manifest, sizes, WAL and recovery state."""
        self._check_open()
        view = self.view()
        overlay_ops = view.delta_ops if isinstance(view, DeltaAdjacency) else 0
        return {
            "directory": self.directory,
            "name": self._manifest.get("name", ""),
            "generation": self._manifest["generation"],
            "snapshot": self._manifest["snapshot"],
            "snapshot_version": self._manifest["snapshot_version"],
            "wal": self._manifest["wal"],
            "wal_records_logged": self._wal.records_logged,
            "wal_bytes": self._wal.tell(),
            "recovered_wal_records": self._recovery["wal_records"],
            "recovered_tail_torn": self._recovery["tail_torn"],
            "materialized": self.materialized,
            "degraded": self.degraded,
            "degraded_reason": self._degraded,
            "order": view.num_vertices,
            "size": view.num_edges,
            "labels": view.num_labels,
            "overlay_ops": overlay_ops,
            "replicating": self._segments is not None,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "materialized" if self.materialized else "lazy")
        return "PersistentGraph<{} gen {}, {}>".format(
            self.directory, self._manifest["generation"], state)
