"""The snapshot store: CSR adjacency spilled to a versioned binary layout.

A snapshot file holds one :class:`~repro.graph.compact.CompactAdjacency`
(or :class:`~repro.graph.compact.CompactDiGraph`) frozen at a graph
version, in a layout designed to be **mapped**, not parsed::

    +--------------------+  offset 0
    | magic   "RPCSR001" |  8 bytes
    | header_len  u32 LE |  4 bytes
    | header_crc  u32 LE |  4 bytes
    +--------------------+  offset 16
    | header JSON (utf-8,|  interning tables, per-label edge counts,
    |  space-padded to a |  properties, name, version, data_crc32
    |  16-byte boundary) |
    +--------------------+  data_offset = 16 + header_len
    | CSR array data     |  int64 LE arrays, back to back; float64
    |                    |  section last (digraph weights only)
    +--------------------+

For the multi-relational kind the data region is, per label ``l``:
``fwd_indptr`` (n+1), ``fwd_indices`` (m_l), ``rev_indptr`` (n+1),
``rev_indices`` (m_l).  All array offsets are *computed* from the header's
``label_counts`` — the layout is deterministic, so reopening maps the file
once (``np.memmap``) and carves zero-copy views; a traversal then faults in
only the CSR pages it actually touches.  Without numpy the arrays are
loaded eagerly into ``array.array('q')`` (same indexing/slicing contract,
no mapping) — mmap is a fast path, never a correctness dependency.

``data_crc32`` covers the whole data region.  It is verified on
``verify=True`` opens (and by ``repro db info``); the default mmap open
skips it precisely because checksumming would fault in every page.

Vertex and label identifiers must be JSON scalars (str/int/float/bool) —
the same restriction (and for the same identity-preserving reason) as the
write-ahead log's.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import zlib
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

from repro.errors import StorageError
from repro.faults import fault_point
from repro.graph.compact import (
    CompactAdjacency,
    CompactDiGraph,
    _build_csr,
    fold_adjacency_pairs,
)
from repro.storage.wal import check_loggable

__all__ = [
    "SNAPSHOT_MAGIC",
    "SHARD_MANIFEST_NAME",
    "SnapshotMetadata",
    "fold_view",
    "write_adjacency_snapshot",
    "open_adjacency_snapshot",
    "write_digraph_snapshot",
    "open_digraph_snapshot",
    "write_sharded_snapshots",
    "read_shard_manifest",
    "open_shard",
    "open_sharded_snapshot",
]

SNAPSHOT_MAGIC = b"RPCSR001"

_PRELUDE = struct.Struct("<II")  # header length, header crc32
_PRELUDE_SIZE = len(SNAPSHOT_MAGIC) + _PRELUDE.size
_ALIGN = 16
_INT_DTYPE = "<i8"
_FLOAT_DTYPE = "<f8"


class SnapshotMetadata:
    """Sidecar state a snapshot carries beyond the CSR arrays."""

    __slots__ = ("kind", "name", "version", "vertex_properties",
                 "edge_properties", "path")

    def __init__(self, kind: str, name: str, version: int,
                 vertex_properties: Dict[Hashable, Dict[str, Any]],
                 edge_properties: Dict[Tuple, Dict[str, Any]], path: str):
        self.kind = kind
        self.name = name
        self.version = version
        self.vertex_properties = vertex_properties
        self.edge_properties = edge_properties
        self.path = path

    def __repr__(self) -> str:
        return "SnapshotMetadata<{} {!r} v{}>".format(
            self.kind, self.name, self.version)


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------

def _check_identifiers(values: Iterable[Hashable], what: str) -> None:
    for value in values:
        try:
            check_loggable((value,))
        except StorageError as exc:
            raise StorageError("{}: {}".format(what, exc)) from exc


def _int_cells(values: Iterable[int]) -> Any:
    """An int64 buffer for ``values`` — numpy array, or array.array('q')."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    import array
    return array.array("q", values)


def _cell_bytes(cells: Any) -> bytes:
    if _np is not None and isinstance(cells, _np.ndarray):
        return cells.astype(_INT_DTYPE, copy=False).tobytes()
    raw = cells.tobytes()
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        swapped = cells.__copy__() if hasattr(cells, "__copy__") else cells[:]
        swapped.byteswap()
        raw = swapped.tobytes()
    return raw


def _write_file(path: str, header: Dict[str, Any],
                sections: List[bytes]) -> None:
    """Prelude + padded header + data, fsynced before returning.

    A write/fsync failure (real or injected at ``snapshot.fsync``)
    surfaces as :class:`StorageError` and removes the partial file —
    callers publish snapshots by writing under a fresh/tmp name first,
    so a failed spill must never leave a half-written file for a later
    open to trip over.
    """
    data = b"".join(sections)
    header = dict(header)
    header["data_crc32"] = zlib.crc32(data)
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    pad = -(_PRELUDE_SIZE + len(raw)) % _ALIGN
    raw += b" " * pad  # trailing whitespace is valid JSON
    try:
        with open(path, "wb") as stream:
            stream.write(SNAPSHOT_MAGIC)
            stream.write(_PRELUDE.pack(len(raw), zlib.crc32(raw)))
            stream.write(raw)
            stream.write(data)
            stream.flush()
            fault_point("snapshot.fsync")
            os.fsync(stream.fileno())
    except OSError as exc:
        try:
            os.unlink(path)
        except OSError:
            pass
        raise StorageError(
            "{}: snapshot write failed ({})".format(path, exc)) from exc


def _read_header(path: str) -> Tuple[Dict[str, Any], int]:
    """``(header, data_offset)`` with magic and header CRC verified."""
    with open(path, "rb") as stream:
        magic = stream.read(len(SNAPSHOT_MAGIC))
        if magic != SNAPSHOT_MAGIC:
            raise StorageError(
                "{}: not a snapshot file (bad magic {!r})".format(path, magic))
        prelude = stream.read(_PRELUDE.size)
        if len(prelude) < _PRELUDE.size:
            raise StorageError("{}: truncated snapshot prelude".format(path))
        header_len, header_crc = _PRELUDE.unpack(prelude)
        raw = stream.read(header_len)
        if len(raw) < header_len or zlib.crc32(raw) != header_crc:
            raise StorageError("{}: snapshot header is corrupt".format(path))
    try:
        header = json.loads(raw.decode("utf-8"))
    except ValueError as exc:
        raise StorageError(
            "{}: snapshot header is not valid JSON: {}".format(path, exc)
        ) from exc
    if header.get("format") != 1:
        raise StorageError("{}: unsupported snapshot format {!r}".format(
            path, header.get("format")))
    return header, _PRELUDE_SIZE + header_len


def _map_ints(path: str, data_offset: int, total: int, mmap: bool) -> Any:
    """The whole int64 data region: memmap view, ndarray, or array.array."""
    if _np is not None:
        if total == 0:
            return _np.empty(0, dtype=_INT_DTYPE)
        if mmap:
            return _np.memmap(path, dtype=_INT_DTYPE, mode="r",
                              offset=data_offset, shape=(total,))
        return _np.fromfile(path, dtype=_INT_DTYPE, count=total,
                            offset=data_offset)
    import array
    cells = array.array("q")
    with open(path, "rb") as stream:
        stream.seek(data_offset)
        cells.fromfile(stream, total)
    if sys.byteorder != "little":  # pragma: no cover
        cells.byteswap()
    return cells


def _verify_data_crc(path: str, data_offset: int, expected: int) -> None:
    crc = 0
    with open(path, "rb") as stream:
        stream.seek(data_offset)
        while True:
            chunk = stream.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    if crc != expected:
        raise StorageError(
            "{}: snapshot data checksum mismatch (file is corrupt)".format(
                path))


def _encode_properties(vertex_of: List[Hashable], label_of: List[Hashable],
                       vertex_properties: Optional[Dict[Hashable, Dict[str, Any]]],
                       edge_properties: Optional[Dict[Tuple, Dict[str, Any]]]) -> Dict[str, Any]:
    vertex_ids = {v: i for i, v in enumerate(vertex_of)}
    label_ids = {l: i for i, l in enumerate(label_of)}
    packed_vertices = {}
    for vertex, props in (vertex_properties or {}).items():
        if props and vertex in vertex_ids:
            packed_vertices[str(vertex_ids[vertex])] = props
    packed_edges = []
    for (tail, label, head), props in (edge_properties or {}).items():
        if props and tail in vertex_ids and head in vertex_ids \
                and label in label_ids:
            packed_edges.append([vertex_ids[tail], label_ids[label],
                                 vertex_ids[head], props])
    try:
        json.dumps(packed_vertices), json.dumps(packed_edges)
    except (TypeError, ValueError) as exc:
        raise StorageError(
            "graph properties are not JSON-serializable: {}".format(exc)
        ) from exc
    return packed_vertices, packed_edges


def _decode_properties(header: Dict[str, Any], vertex_of: List[Hashable],
                       label_of: List[Hashable]) -> Tuple[Dict[Hashable, Dict[str, Any]],
                                                          Dict[Tuple, Dict[str, Any]]]:
    vertex_properties: Dict[Hashable, Dict[str, Any]] = {}
    for index, props in (header.get("vertex_properties") or {}).items():
        vertex_properties[vertex_of[int(index)]] = dict(props)
    edge_properties: Dict[Tuple, Dict[str, Any]] = {}
    for tail_id, label_id, head_id, props in header.get("edge_properties", ()):
        edge_properties[(vertex_of[tail_id], label_of[label_id],
                         vertex_of[head_id])] = dict(props)
    return vertex_properties, edge_properties


def _decode_ids(values: Iterable[Hashable]) -> List[Hashable]:
    """JSON round-trips scalars losslessly; just guard against lists."""
    return list(values)


# ----------------------------------------------------------------------
# Folding (delta overlay -> dense arrays)
# ----------------------------------------------------------------------

def fold_view(view: Any) -> Tuple[List[Hashable], List[Hashable],
                             List[List[Tuple[int, int]]], int]:
    """Flatten any snapshot view to ``(vertex_of, label_of, pairs, |E|)``.

    The checkpoint's fold step — tombstoned vertex slots dropped, ids
    re-densified, per-label edge pairs merged (base minus removals plus
    additions).  The actual fold lives in
    :func:`repro.graph.compact.fold_adjacency_pairs`, shared with the
    sharding layer's overlay densification so the invariants cannot drift.
    """
    return fold_adjacency_pairs(view)


# ----------------------------------------------------------------------
# Multi-relational snapshots
# ----------------------------------------------------------------------

def write_adjacency_snapshot(path: str, view: Any, name: str = "",
                             version: int = 0,
                             vertex_properties: Optional[Dict[Hashable, Dict[str, Any]]] = None,
                             edge_properties: Optional[Dict[Tuple, Dict[str, Any]]] = None) -> None:
    """Spill one adjacency view (base or overlay) to ``path``.

    ``view`` is anything :func:`fold_view` accepts; properties are carried
    in the header sidecar (sparse — only non-empty maps are stored).
    """
    vertex_of, label_of, per_label, num_edges = fold_view(view)
    _check_identifiers(vertex_of, "vertex ids")
    _check_identifiers(label_of, "label ids")
    n = len(vertex_of)
    sections: List[bytes] = []
    label_counts: List[int] = []
    for pairs in per_label:
        label_counts.append(len(pairs))
        fwd_indptr, fwd_indices = _build_csr(n, pairs, len(pairs))
        rev_indptr, rev_indices = _build_csr(
            n, ((h, t) for t, h in pairs), len(pairs))
        for cells in (fwd_indptr, fwd_indices, rev_indptr, rev_indices):
            sections.append(_cell_bytes(_int_cells(cells)))
    packed_vertices, packed_edges = _encode_properties(
        vertex_of, label_of, vertex_properties, edge_properties)
    header = {
        "format": 1,
        "kind": "multirelational",
        "name": name,
        "version": version,
        "num_vertices": n,
        "num_edges": num_edges,
        "vertex_of": vertex_of,
        "label_of": label_of,
        "label_counts": label_counts,
        "vertex_properties": packed_vertices,
        "edge_properties": packed_edges,
    }
    try:
        json.dumps(header["vertex_of"]), json.dumps(header["label_of"])
    except (TypeError, ValueError) as exc:
        raise StorageError(
            "vertex/label ids are not JSON-serializable: {}".format(exc)
        ) from exc
    _write_file(path, header, sections)


def open_adjacency_snapshot(path: str, mmap: bool = True,
                            verify: bool = False
                            ) -> Tuple[CompactAdjacency, SnapshotMetadata]:
    """Reopen a multi-relational snapshot, mmap-backed when possible.

    Returns ``(snapshot, metadata)``.  With numpy and ``mmap=True`` the CSR
    arrays are zero-copy views into one ``np.memmap`` — nothing beyond the
    header is read until a kernel slices a row.  ``verify=True`` checksums
    the data region first (reads every page; use for integrity audits, not
    the serving path).
    """
    header, data_offset = _read_header(path)
    if header.get("kind") != "multirelational":
        raise StorageError("{}: expected a multirelational snapshot, found "
                           "kind {!r}".format(path, header.get("kind")))
    vertex_of = _decode_ids(header["vertex_of"])
    label_of = _decode_ids(header["label_of"])
    n = header["num_vertices"]
    label_counts = header["label_counts"]
    if len(vertex_of) != n or len(label_counts) != len(label_of):
        raise StorageError("{}: snapshot header is inconsistent".format(path))
    if verify:
        _verify_data_crc(path, data_offset, header["data_crc32"])
    total = sum(2 * (n + 1) + 2 * count for count in label_counts)
    flat = _map_ints(path, data_offset, total, mmap)
    if len(flat) != total:
        raise StorageError(
            "{}: snapshot data region is truncated ({} of {} cells)".format(
                path, len(flat), total))
    forward: List[Tuple] = []
    reverse: List[Tuple] = []
    cursor = 0
    for count in label_counts:
        blocks = []
        for length in (n + 1, count, n + 1, count):
            blocks.append(flat[cursor:cursor + length])
            cursor += length
        forward.append((blocks[0], blocks[1]))
        reverse.append((blocks[2], blocks[3]))
    snapshot = CompactAdjacency.from_arrays(
        header.get("version", 0), vertex_of, label_of, forward, reverse,
        header["num_edges"])
    vertex_properties, edge_properties = _decode_properties(
        header, vertex_of, label_of)
    metadata = SnapshotMetadata("multirelational", header.get("name", ""),
                                header.get("version", 0), vertex_properties,
                                edge_properties, path)
    return snapshot, metadata


# ----------------------------------------------------------------------
# Single-relational (DiGraph) snapshots
# ----------------------------------------------------------------------

def write_digraph_snapshot(path: str, snapshot: CompactDiGraph,
                           name: str = "") -> None:
    """Spill one :class:`CompactDiGraph` (CSR arrays included) to ``path``."""
    if _np is None:
        raise StorageError("digraph snapshots require numpy")
    vertex_of = list(snapshot.vertex_of)
    _check_identifiers(vertex_of, "vertex ids")
    n = snapshot.num_vertices
    m = len(snapshot.tails)
    int_arrays = (snapshot.tails, snapshot.heads,
                  snapshot.fwd_indptr, snapshot.fwd_indices,
                  snapshot.rev_indptr, snapshot.rev_indices,
                  snapshot.und_indptr, snapshot.und_indices)
    sections = [_np.ascontiguousarray(a, dtype=_INT_DTYPE).tobytes()
                for a in int_arrays]
    for a in (snapshot.weights, snapshot.out_weight):
        sections.append(_np.ascontiguousarray(a, dtype=_FLOAT_DTYPE).tobytes())
    header = {
        "format": 1,
        "kind": "digraph",
        "name": name,
        "version": snapshot.version,
        "num_vertices": n,
        "num_edges": m,
        "vertex_of": vertex_of,
    }
    _write_file(path, header, sections)


#
# ----------------------------------------------------------------------
# Sharded snapshots (vertex-range shard files + manifest)
# ----------------------------------------------------------------------

SHARD_MANIFEST_NAME = "shards.json"


class _MergedShardView:
    """Read adapter presenting a :class:`ShardedSnapshot` as one flat view.

    Exposes exactly the surface :func:`fold_view` consumes
    (``live_vertex_ids`` / ``out_neighbors`` / interning tables), resolving
    each row through the shard that owns it — so the full-graph snapshot
    file can be spilled from the shards without re-walking any graph dict.
    """

    def __init__(self, sharded: Any):
        self.sharded = sharded
        self.vertex_of = sharded.vertex_of
        self.label_of = sharded.label_of
        self.num_slots = sharded.num_vertices

    def live_vertex_ids(self) -> Iterable[int]:
        return range(self.num_slots)

    def out_neighbors(self, vertex_id: int, label_id: int) -> Any:
        shard = self.sharded.shards[self.sharded.shard_for(vertex_id)]
        return shard.out_neighbors(vertex_id, label_id)


def _shard_file_name(index: int) -> str:
    return "shard-{:04d}.rcsr".format(index)


def write_sharded_snapshots(directory: str, sharded: Any, name: str = "",
                            write_full: bool = True) -> Dict[str, Any]:
    """Spill a :class:`~repro.graph.sharding.ShardedSnapshot` to ``directory``.

    Writes one standard multirelational snapshot file per shard (global
    vertex table, only the shard's owned rows — so a worker process maps
    just the pages it owns), optionally one ``full.rcsr`` merged snapshot
    for the sweep kernels that need the whole CSR, and a ``shards.json``
    manifest recording the ranges.  Returns the manifest dict.
    """
    os.makedirs(directory, exist_ok=True)

    def write_replacing(file_name: str, view: Any) -> None:
        # Never truncate a live file in place: a crash mid-rewrite must
        # not leave a half-written shard under a name the (still old)
        # manifest vouches for, and long-lived workers may hold the old
        # inode mmap'd — os.replace retires it without clobbering them.
        final_path = os.path.join(directory, file_name)
        tmp_path = final_path + ".tmp"
        write_adjacency_snapshot(tmp_path, view, name=name,
                                 version=sharded.version)
        try:
            fault_point("shard.rename")
            os.replace(tmp_path, final_path)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise StorageError(
                "{}: shard publish failed ({})".format(final_path, exc)
            ) from exc

    files = []
    for index, shard in enumerate(sharded.shards):
        file_name = _shard_file_name(index)
        write_replacing(file_name, shard)
        files.append(file_name)
    manifest: Dict[str, Any] = {
        "format": 1,
        "kind": "sharded",
        "name": name,
        "version": sharded.version,
        "num_shards": sharded.num_shards,
        "num_vertices": sharded.num_vertices,
        "num_edges": sharded.num_edges,
        "ranges": [[lo, hi] for lo, hi in sharded.ranges],
        "shards": files,
        "full": None,
    }
    if write_full:
        manifest["full"] = "full.rcsr"
        write_replacing(manifest["full"], _MergedShardView(sharded))
    tmp_path = os.path.join(directory, SHARD_MANIFEST_NAME + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as stream:
        json.dump(manifest, stream, indent=2)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp_path, os.path.join(directory, SHARD_MANIFEST_NAME))
    return manifest


def read_shard_manifest(directory: str) -> Dict[str, Any]:
    """Load and sanity-check ``shards.json`` from a shard directory."""
    path = os.path.join(directory, SHARD_MANIFEST_NAME)
    if not os.path.exists(path):
        raise StorageError(
            "{} is not a shard directory (no {})".format(
                directory, SHARD_MANIFEST_NAME))
    with open(path, "r", encoding="utf-8") as stream:
        manifest = json.load(stream)
    if manifest.get("kind") != "sharded" or manifest.get("format") != 1:
        raise StorageError("{}: unsupported shard manifest".format(path))
    if len(manifest.get("shards", ())) != len(manifest.get("ranges", ())):
        raise StorageError("{}: shard manifest is inconsistent".format(path))
    return manifest


def _open_manifest_member(directory: str, manifest: Dict[str, Any],
                          file_name: str, mmap: bool) -> CompactAdjacency:
    """Open one file the manifest names, cross-checking its own version.

    Shard files are rewritten atomically but individually; only this
    check makes a half-refreshed directory (some files at the next
    version, the manifest still at the old one — or vice versa after a
    crash) fail loudly instead of serving rows from two graph versions.
    """
    snapshot, _ = open_adjacency_snapshot(
        os.path.join(directory, file_name), mmap=mmap)
    if snapshot.version != manifest["version"]:
        raise StorageError(
            "{}/{} is at version {} but the shard manifest says {} — "
            "the directory was partially rewritten; re-run the shard "
            "spill".format(directory, file_name, snapshot.version,
                           manifest["version"]))
    return snapshot


def open_shard(directory: str, index: int, mmap: bool = True
               ) -> Tuple[CompactAdjacency, Tuple[int, int]]:
    """Reopen one shard file: ``(snapshot, (lo, hi))``.

    The worker-process entry point — only this shard's file is opened
    (mmap-backed under numpy), nothing else in the directory is touched.
    """
    manifest = read_shard_manifest(directory)
    if not 0 <= index < manifest["num_shards"]:
        raise StorageError("{}: no shard {} (have {})".format(
            directory, index, manifest["num_shards"]))
    snapshot = _open_manifest_member(directory, manifest,
                                     manifest["shards"][index], mmap)
    lo, hi = manifest["ranges"][index]
    return snapshot, (lo, hi)


def open_sharded_snapshot(directory: str, mmap: bool = True) -> Any:
    """Reopen every shard of a shard directory as a ``ShardedSnapshot``."""
    from repro.graph.sharding import ShardedSnapshot
    manifest = read_shard_manifest(directory)
    shards = [_open_manifest_member(directory, manifest, file_name, mmap)
              for file_name in manifest["shards"]]
    ranges = [(lo, hi) for lo, hi in manifest["ranges"]]
    return ShardedSnapshot.from_shards(manifest["version"], ranges, shards,
                                       manifest["num_edges"])


def open_digraph_snapshot(path: str, mmap: bool = True,
                          verify: bool = False) -> CompactDiGraph:
    """Reopen a digraph snapshot; CSR index arrays are adopted, not rebuilt."""
    if _np is None:
        raise StorageError("digraph snapshots require numpy")
    header, data_offset = _read_header(path)
    if header.get("kind") != "digraph":
        raise StorageError("{}: expected a digraph snapshot, found kind "
                           "{!r}".format(path, header.get("kind")))
    if verify:
        _verify_data_crc(path, data_offset, header["data_crc32"])
    vertex_of = _decode_ids(header["vertex_of"])
    n, m = header["num_vertices"], header["num_edges"]
    if len(vertex_of) != n:
        raise StorageError("{}: snapshot header is inconsistent".format(path))
    int_lengths = (m, m, n + 1, m, n + 1, m, n + 1, 2 * m)
    total_ints = sum(int_lengths)
    if mmap and total_ints and (m + n):
        ints = _np.memmap(path, dtype=_INT_DTYPE, mode="r",
                          offset=data_offset, shape=(total_ints,))
        floats = _np.memmap(path, dtype=_FLOAT_DTYPE, mode="r",
                            offset=data_offset + 8 * total_ints,
                            shape=(m + n,))
    else:
        ints = _np.fromfile(path, dtype=_INT_DTYPE, count=total_ints,
                            offset=data_offset)
        floats = _np.fromfile(path, dtype=_FLOAT_DTYPE, count=m + n,
                              offset=data_offset + 8 * total_ints)
    if len(ints) != total_ints or len(floats) != m + n:
        raise StorageError("{}: snapshot data region is truncated".format(path))
    views = []
    cursor = 0
    for length in int_lengths:
        views.append(ints[cursor:cursor + length])
        cursor += length
    tails, heads, fwd_ip, fwd_ix, rev_ip, rev_ix, und_ip, und_ix = views
    weights, out_weight = floats[:m], floats[m:]
    vertex_ids = {v: i for i, v in enumerate(vertex_of)}
    return CompactDiGraph.from_csr(
        header.get("version", 0), vertex_of, vertex_ids, tails, heads,
        weights, fwd_ip, fwd_ix, rev_ip, rev_ix, und_ip, und_ix, out_weight)
