"""DFA minimization and equivalence over the finite label alphabet.

Because the label alphabet Omega is finite, the [8]-style automata admit
the classical constructions the paper's edge-set automata do not:

* :func:`minimize` — Moore's partition-refinement minimization (the
  canonical minimal DFA, up to state naming),
* :func:`equivalent` — language equivalence by product BFS over the two
  automata's reachable pair space,
* :func:`expressions_equivalent` — one-call equivalence of two label
  expressions (compile, determinize over the union alphabet, compare).

These power the regex-equivalence tests (e.g. ``(a|b)* == (a* b*)*``) and
give downstream users a decision procedure for query containment at the
label level.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.rpq.labelregex import (
    LabelDFA,
    LabelExpr,
    build_label_nfa,
    determinize,
)

__all__ = ["minimize", "equivalent", "expressions_equivalent"]

#: Sentinel index for the implicit dead (reject-everything) state.
_DEAD = -1


def _complete_step(dfa: LabelDFA, state: int, label: Hashable) -> int:
    """Transition in the completed automaton (missing moves go dead)."""
    if state == _DEAD:
        return _DEAD
    return dfa.transitions[state].get(label, _DEAD)


def minimize(dfa: LabelDFA, alphabet: Iterable[Hashable]) -> LabelDFA:
    """Moore's algorithm: merge states with identical residual languages.

    The input is implicitly completed with a dead state; the dead class is
    dropped again on output (missing transitions mean rejection, matching
    :class:`LabelDFA` conventions).
    """
    alphabet = sorted(set(alphabet), key=repr)
    states: List[int] = list(range(dfa.num_states)) + [_DEAD]

    # Initial partition: accepting vs non-accepting (dead is non-accepting).
    def is_accepting(state: int) -> bool:
        return state in dfa.accepting

    partition: Dict[int, int] = {
        state: (1 if is_accepting(state) else 0) for state in states}
    while True:
        # Signature: own class + class of each labeled successor.
        signatures: Dict[int, Tuple] = {}
        for state in states:
            signatures[state] = (
                partition[state],
                tuple(partition[_complete_step(dfa, state, label)]
                      for label in alphabet),
            )
        renumber: Dict[Tuple, int] = {}
        refined: Dict[int, int] = {}
        for state in states:
            signature = signatures[state]
            if signature not in renumber:
                renumber[signature] = len(renumber)
            refined[state] = renumber[signature]
        if refined == partition:
            break
        partition = refined

    # Build the quotient, skipping the dead class entirely.
    dead_class = partition[_DEAD]
    class_ids = sorted(set(partition.values()) - {dead_class})
    index_of = {cls: position for position, cls in enumerate(class_ids)}
    transitions: List[Dict[Hashable, int]] = [{} for _ in class_ids]
    for state in range(dfa.num_states):
        cls = partition[state]
        if cls == dead_class:
            continue
        source = index_of[cls]
        for label in alphabet:
            target_state = _complete_step(dfa, state, label)
            target_class = partition[target_state]
            if target_class == dead_class:
                continue
            transitions[source][label] = index_of[target_class]
    accepting = frozenset(
        index_of[partition[state]] for state in dfa.accepting
        if partition[state] != dead_class)
    start_class = partition[dfa.start]
    if start_class == dead_class:
        # The language is empty: a single non-accepting state suffices.
        return LabelDFA(0, frozenset(), [{}])
    return LabelDFA(index_of[start_class], accepting, transitions)


def equivalent(first: LabelDFA, second: LabelDFA,
               alphabet: Iterable[Hashable]) -> bool:
    """Language equality by synchronized BFS over the completed product.

    Two automata differ exactly when some reachable state pair disagrees
    on acceptance; BFS finds the shortest such witness or exhausts the
    product space.
    """
    alphabet = sorted(set(alphabet), key=repr)

    def accepts(dfa: LabelDFA, state: int) -> bool:
        return state != _DEAD and state in dfa.accepting

    start = (first.start, second.start)
    seen: Set[Tuple[int, int]] = {start}
    queue: deque = deque([start])
    while queue:
        state_a, state_b = queue.popleft()
        if accepts(first, state_a) != accepts(second, state_b):
            return False
        for label in alphabet:
            pair = (_complete_step(first, state_a, label),
                    _complete_step(second, state_b, label))
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return True


def expressions_equivalent(first: LabelExpr, second: LabelExpr) -> bool:
    """Decide ``L(first) == L(second)`` over their combined alphabet."""
    alphabet = set(first.symbols()) | set(second.symbols())
    dfa_a = determinize(build_label_nfa(first), alphabet)
    dfa_b = determinize(build_label_nfa(second), alphabet)
    return equivalent(dfa_a, dfa_b, alphabet)
