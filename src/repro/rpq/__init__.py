"""Label-level regular path queries — the Mendelzon & Wood [8] baseline.

The paper defines its regular expressions over the edge alphabet ``E``;
its reference [8] defines them over the label alphabet ``Omega``.  This
package implements the latter (label regex AST, NFA, DFA via subset
construction, product-automaton RPQ evaluation, and the NP-hard regular
*simple* path variant), plus :func:`lift_to_edge_expression`, the bridge
showing the label formulation embeds into the paper's.
"""

from repro.rpq.labelregex import (
    LabelConcat,
    LabelDFA,
    LabelEmpty,
    LabelEpsilon,
    LabelExpr,
    LabelNFA,
    LabelStar,
    LabelSymbol,
    LabelUnion,
    accepts_label_word,
    build_label_nfa,
    determinize,
    lconcat,
    loptional,
    lplus,
    lstar,
    lunion,
    sym,
)
from repro.rpq.evaluation import (
    ConstrainedQuery,
    compile_rpq,
    lift_to_edge_expression,
    lower_to_constrained_query,
    lower_to_label_expression,
    regular_simple_paths,
    rpq_pairs,
    rpq_pairs_basic,
    rpq_pairs_between,
    rpq_pairs_to_targets,
    rpq_paths,
)
from repro.rpq.minimize import equivalent, expressions_equivalent, minimize

__all__ = [
    "LabelExpr", "LabelEmpty", "LabelEpsilon", "LabelSymbol", "LabelUnion",
    "LabelConcat", "LabelStar", "sym", "lunion", "lconcat", "lstar",
    "loptional", "lplus", "LabelNFA", "LabelDFA", "build_label_nfa",
    "determinize", "accepts_label_word",
    "compile_rpq", "rpq_pairs", "rpq_pairs_basic", "rpq_pairs_to_targets",
    "rpq_pairs_between", "rpq_paths",
    "regular_simple_paths",
    "lift_to_edge_expression", "lower_to_label_expression",
    "ConstrainedQuery", "lower_to_constrained_query",
    "minimize", "equivalent", "expressions_equivalent",
]
