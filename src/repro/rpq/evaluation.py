"""Label-level RPQ evaluation: product construction and regular simple paths.

Mendelzon & Wood's problem (the paper's [8]): given vertices x, y and a
regular expression R over the *labels*, find paths from x to y whose path
label is in L(R).

* :func:`rpq_pairs` — all (source, target) pairs connected by some R-path
  (the standard RPQ answer; polynomial via DFA x graph product reachability),
* :func:`rpq_paths` — the witness paths themselves, bounded by length,
* :func:`regular_simple_paths` — the [8] variant that demands *simple*
  witness paths (no repeated vertex).  NP-hard in general, so implemented
  as a correct exponential backtracking search; fine at laptop scale and a
  deliberate contrast with the unrestricted case.

Comparison with the main algebra: a label expression lifts into an edge-set
expression by mapping each symbol ``a`` to the atom ``[_, a, _]``
(:func:`lift_to_edge_expression`), and the tests verify the two formulations
agree on path labels — which is exactly the paper's remark that its regex is
"defined for E" where [8]'s is "defined for Omega".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.path import EPSILON, Path
from repro.core.pathset import PathSet
from repro.graph.compact import (
    rpq_pairs_backward,
    rpq_pairs_bidirectional,
    rpq_pairs_compact,
)
from repro.graph.graph import MultiRelationalGraph
from repro.rpq.labelregex import (
    LabelConcat,
    LabelDFA,
    LabelEmpty,
    LabelEpsilon,
    LabelExpr,
    LabelStar,
    LabelSymbol,
    LabelUnion,
    build_label_nfa,
    determinize,
)

__all__ = [
    "compile_rpq",
    "rpq_pairs",
    "rpq_pairs_basic",
    "rpq_pairs_to_targets",
    "rpq_pairs_between",
    "rpq_paths",
    "regular_simple_paths",
    "lift_to_edge_expression",
    "lower_to_label_expression",
    "ConstrainedQuery",
    "lower_to_constrained_query",
]


def compile_rpq(expression: LabelExpr, graph: MultiRelationalGraph) -> LabelDFA:
    """Compile a label expression to a DFA over the graph's label alphabet.

    Symbols outside the graph's alphabet are kept (they simply never fire),
    so expressions are portable across graphs.
    """
    alphabet = set(graph.labels()) | set(expression.symbols())
    return determinize(build_label_nfa(expression), alphabet)


def rpq_pairs(graph: MultiRelationalGraph, expression: LabelExpr,
              sources: Optional[FrozenSet[Hashable]] = None,
              targets: Optional[FrozenSet[Hashable]] = None
              ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """All ``(x, y)`` with some x->y path whose label word is in L(R).

    BFS over the (vertex, dfa-state) product graph — polynomial, the
    classical RPQ algorithm.  ``sources=None`` means all vertices;
    ``targets`` restricts the emitted pairs by target vertex.

    The traversal runs on the compact integer-indexed adjacency snapshot
    (:mod:`repro.graph.compact`): the DFA is compiled once and every source
    shares the same snapshot, per-(state, label) CSR transition table and
    stamped visited array.  Under mutation the snapshot is maintained
    incrementally — the graph's journal is replayed into a delta overlay
    the kernel consults alongside the base CSR, so point updates between
    queries cost O(delta), not an O(V + E) rebuild.
    :func:`rpq_pairs_basic` keeps the direct per-source product BFS as the
    reference implementation; :func:`rpq_pairs_to_targets` and
    :func:`rpq_pairs_between` are the backward and bidirectional variants
    (identical answers, different cost shapes — the engine's direction
    model picks among the three).
    """
    dfa = compile_rpq(expression, graph)
    return rpq_pairs_compact(graph, dfa, sources, targets=targets)


def rpq_pairs_to_targets(graph: MultiRelationalGraph, expression: LabelExpr,
                         targets: Optional[FrozenSet[Hashable]] = None,
                         sources: Optional[FrozenSet[Hashable]] = None
                         ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """:func:`rpq_pairs`, evaluated backward from the target side.

    Per-target product BFS over the reverse CSR with the DFA reversed —
    cost bounded by the targets' in-cones instead of the sources'
    out-cones, so it wins when targets are the selective end (``R ·
    [_, a, j]``-style suffix-bound queries).  Answers are identical to the
    forward kernel's by construction; the differential suite enforces it.
    """
    dfa = compile_rpq(expression, graph)
    return rpq_pairs_backward(graph, dfa, targets, sources=sources)


def rpq_pairs_between(graph: MultiRelationalGraph, expression: LabelExpr,
                      sources: FrozenSet[Hashable],
                      targets: FrozenSet[Hashable]
                      ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """:func:`rpq_pairs` between explicit endpoint sets, meet-in-the-middle.

    Runs the forward and backward product searches simultaneously,
    expanding whichever frontier is smaller and joining on (vertex, state)
    meets — the point-to-point fast path
    (:func:`repro.graph.compact.rpq_pairs_bidirectional`).
    """
    dfa = compile_rpq(expression, graph)
    return rpq_pairs_bidirectional(graph, dfa, sources, targets)


def rpq_pairs_basic(graph: MultiRelationalGraph, expression: LabelExpr,
                    sources: Optional[FrozenSet[Hashable]] = None
                    ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """Reference implementation of :func:`rpq_pairs` (per-source product BFS).

    Kept verbatim for the equivalence tests and the E13 benchmark: it
    resolves adjacency through the hash indices (one frozenset per
    ``match`` pattern) instead of the compact snapshot.
    """
    dfa = compile_rpq(expression, graph)
    start_vertices = graph.vertices() if sources is None else sources
    answers: Set[Tuple[Hashable, Hashable]] = set()
    for source in start_vertices:
        if not graph.has_vertex(source):
            continue
        seen = {(source, dfa.start)}
        queue = deque(seen)
        if dfa.start in dfa.accepting:
            answers.add((source, source))
        while queue:
            vertex, state = queue.popleft()
            for e in graph.match(tail=vertex):
                next_state = dfa.step(state, e.label)
                if next_state is None:
                    continue
                config = (e.head, next_state)
                if config in seen:
                    continue
                seen.add(config)
                if next_state in dfa.accepting:
                    answers.add((source, e.head))
                queue.append(config)
    return frozenset(answers)


def rpq_paths(graph: MultiRelationalGraph, expression: LabelExpr,
              max_length: int,
              sources: Optional[FrozenSet[Hashable]] = None) -> PathSet:
    """Witness paths (length-bounded) whose label word is in L(R).

    Product BFS like :func:`rpq_pairs` but materializing paths; bounded by
    ``max_length`` because stars over cycles are infinite.

    No dedup set is kept: every queued configuration ``(vertex, state, path)``
    is uniquely determined by its path (the vertex is the path's head, and
    the DFA being deterministic fixes the state as the run over the path's
    label word), and each path is generated exactly once — its parent
    configuration is unique and dequeued once, and source vertices are
    deduplicated up front.  The seed implementation stored the full
    :class:`Path` inside every entry of a ``seen`` set "guarding" against
    revisits that cannot happen, which made memory O(paths x length) twice
    over; the regression test pins the fixed behaviour.
    """
    dfa = compile_rpq(expression, graph)
    start_vertices = frozenset(graph.vertices() if sources is None else sources)
    out: Set[Path] = set()
    queue: deque = deque()
    for source in start_vertices:
        if not graph.has_vertex(source):
            continue
        queue.append((source, dfa.start, EPSILON))
        if dfa.start in dfa.accepting:
            out.add(EPSILON)
    while queue:
        vertex, state, path = queue.popleft()
        if len(path) >= max_length:
            continue
        for e in graph.match(tail=vertex):
            next_state = dfa.step(state, e.label)
            if next_state is None:
                continue
            grown = path.concat(Path((e,)))
            if next_state in dfa.accepting:
                out.add(grown)
            queue.append((e.head, next_state, grown))
    return PathSet(out)


def regular_simple_paths(graph: MultiRelationalGraph, expression: LabelExpr,
                         source: Hashable, target: Hashable,
                         max_length: Optional[int] = None) -> PathSet:
    """Mendelzon & Wood's problem: *simple* x->y paths with label in L(R).

    Backtracking over the (vertex, dfa-state) product with a visited-vertex
    set — correct but worst-case exponential (the problem is NP-hard; [8]'s
    contribution was identifying tractable sub-cases).  ``max_length``
    defaults to ``|V| - 1``, the longest any simple path can be.
    """
    if not graph.has_vertex(source) or not graph.has_vertex(target):
        return PathSet.empty()
    dfa = compile_rpq(expression, graph)
    bound = max_length if max_length is not None else graph.order() - 1
    results: Set[Path] = set()

    def backtrack(vertex: Hashable, state: int, path: Path,
                  visited: Set[Hashable]) -> None:
        if vertex == target and state in dfa.accepting:
            results.add(path)
        if len(path) >= bound:
            return
        for e in graph.match(tail=vertex):
            if e.head in visited:
                continue
            next_state = dfa.step(state, e.label)
            if next_state is None:
                continue
            visited.add(e.head)
            backtrack(e.head, next_state, path.concat(Path((e,))), visited)
            visited.discard(e.head)

    backtrack(source, dfa.start, EPSILON, {source})
    return PathSet(results)


def lift_to_edge_expression(expression: LabelExpr):
    """Translate a label expression into the paper's edge-set formulation.

    Each symbol ``a`` becomes the atom ``[_, a, _]``; concatenation becomes
    the concatenative join (adjacency is exactly what makes a label word
    correspond to a joint path).  The resulting edge expression generates
    precisely the joint paths whose ``omega'`` word is in the label
    language — the bridge between [8]'s formulation and the paper's.
    """
    from repro.regex import EMPTY as EDGE_EMPTY
    from repro.regex import EPSILON as EDGE_EPSILON
    from repro.regex import atom, join, star, union

    expr = expression
    if isinstance(expr, LabelEmpty):
        return EDGE_EMPTY
    if isinstance(expr, LabelEpsilon):
        return EDGE_EPSILON
    if isinstance(expr, LabelSymbol):
        return atom(label=expr.label)
    if isinstance(expr, LabelUnion):
        return union(*(lift_to_edge_expression(p) for p in expr.parts))
    if isinstance(expr, LabelConcat):
        return join(*(lift_to_edge_expression(p) for p in expr.parts))
    if isinstance(expr, LabelStar):
        return star(lift_to_edge_expression(expr.inner))
    raise TypeError("unknown label expression {!r}".format(expr))


#: Bounded-repeat expansion limit for :func:`lower_to_label_expression` —
#: beyond this the expanded concatenation stops being cheaper than the
#: generic evaluator.
_MAX_REPEAT_EXPANSION = 16


def lower_to_label_expression(expression) -> Optional[LabelExpr]:
    """The partial inverse of :func:`lift_to_edge_expression`.

    Translate an edge-set expression into the label formulation when — and
    only when — it is *label-only*: every atom is of the shape ``[_, a, _]``,
    combined by union, join, star or bounded repeat.  Such expressions
    constrain nothing but the label word, so their endpoint-pair semantics
    coincide with the label RPQ and :func:`rpq_pairs` can answer them with
    the compact frontier kernel (the engine's ``pairs`` fast path).

    Returns ``None`` for anything that genuinely needs the edge-set algebra:
    atoms binding a tail or head vertex, literal path sets, concatenative
    products (they admit disjoint, non-path concatenations), and oversized
    repeats.
    """
    from repro.regex.ast import (
        Atom,
        Empty,
        Epsilon,
        Join,
        Repeat,
        Star,
        Union,
    )

    expr = expression
    if isinstance(expr, Empty):
        return LabelEmpty()
    if isinstance(expr, Epsilon):
        return LabelEpsilon()
    if isinstance(expr, Atom):
        if expr.tail is None and expr.head is None and expr.label is not None:
            return LabelSymbol(expr.label)
        return None
    if isinstance(expr, Union):
        parts = [lower_to_label_expression(p) for p in expr.parts]
        if any(p is None for p in parts):
            return None
        return LabelUnion(parts)
    if isinstance(expr, Join):
        parts = [lower_to_label_expression(p) for p in expr.parts]
        if any(p is None for p in parts):
            return None
        return LabelConcat(parts)
    if isinstance(expr, Star):
        inner = lower_to_label_expression(expr.inner)
        return None if inner is None else LabelStar(inner)
    if isinstance(expr, Repeat):
        inner = lower_to_label_expression(expr.inner)
        if inner is None or expr.minimum > _MAX_REPEAT_EXPANSION:
            return None
        required = [inner] * expr.minimum
        if expr.maximum is None:
            return LabelConcat(required + [LabelStar(inner)]) if required \
                else LabelStar(inner)
        if expr.maximum > _MAX_REPEAT_EXPANSION:
            return None
        optional = [LabelUnion((inner, LabelEpsilon()))] * (expr.maximum - expr.minimum)
        parts = required + optional
        if not parts:
            return LabelEpsilon()
        if len(parts) == 1:
            return parts[0]
        return LabelConcat(parts)
    return None


@dataclass(frozen=True)
class ConstrainedQuery:
    """A label RPQ plus optional bound endpoint vertices.

    The lowered form of an edge expression whose only vertex bindings sit
    at the path's ends: ``label_expression`` constrains the label word,
    ``source``/``target`` (``None`` = unbound) pin the path's first/last
    vertex.  Evaluable by the compact kernels as a source/target-
    constrained reachability query — no witness-path materialization.
    """

    label_expression: LabelExpr
    source: Optional[Hashable] = None
    target: Optional[Hashable] = None

    @property
    def label_only(self) -> bool:
        """True when no endpoint is bound (plain label RPQ)."""
        return self.source is None and self.target is None

    def describe(self) -> str:
        """One-phrase summary for EXPLAIN output."""
        if self.label_only:
            return "label-only expression"
        bounds = []
        if self.source is not None:
            bounds.append("source={!r}".format(self.source))
        if self.target is not None:
            bounds.append("target={!r}".format(self.target))
        return "vertex-bound lowering ({})".format(", ".join(bounds))


def lower_to_constrained_query(expression) -> Optional[ConstrainedQuery]:
    """Lower an edge expression to a :class:`ConstrainedQuery` when possible.

    Extends :func:`lower_to_label_expression` to vertex-bound *ends*: a
    join whose first atom binds its tail (``[i, a, _] · R``), whose last
    atom binds its head (``R · [_, a, j]``), or both, lowers to the label
    concatenation with the bound vertices recorded as source/target
    constraints — the paper's joint-path semantics make the prefix atom's
    tail the path's first vertex and the suffix atom's head its last, so
    endpoint-pair answers coincide with the constrained label RPQ.  A lone
    atom may bind either or both of its endpoints (``[i, a, j]`` is the
    single-edge point query).

    Returns ``None`` when the expression binds an *interior* vertex
    (including ``[i, a, j]`` used as a join prefix — its head pins the
    second vertex), omits the label on a bound atom, or otherwise needs
    the full edge-set algebra (literals, products, unions over bound
    atoms): those still route through the bounded ``automaton`` strategy.
    """
    from repro.regex.ast import Atom, Join

    label_only = lower_to_label_expression(expression)
    if label_only is not None:
        return ConstrainedQuery(label_only)
    expr = expression
    if isinstance(expr, Atom):
        if expr.label is None:
            return None
        # tail/head are not both None here, or the label-only lowering
        # above would have taken the expression.
        return ConstrainedQuery(LabelSymbol(expr.label), expr.tail, expr.head)
    if not isinstance(expr, Join):
        return None
    parts = expr.parts
    last = len(parts) - 1
    source: Optional[Hashable] = None
    target: Optional[Hashable] = None
    lowered: List[LabelExpr] = []
    for index, part in enumerate(parts):
        lowered_part = lower_to_label_expression(part)
        if lowered_part is not None:
            lowered.append(lowered_part)
            continue
        if isinstance(part, Atom) and part.label is not None:
            if index == 0 and part.tail is not None and part.head is None:
                source = part.tail
                lowered.append(LabelSymbol(part.label))
                continue
            if index == last and part.head is not None and part.tail is None:
                target = part.head
                lowered.append(LabelSymbol(part.label))
                continue
        return None
    if source is None and target is None:  # pragma: no cover - label-only
        return None                        # joins already lowered above
    return ConstrainedQuery(LabelConcat(lowered), source, target)
