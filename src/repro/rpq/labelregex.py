"""Regular expressions over the *label* alphabet Omega — the [8] baseline.

Section IV-A closes: "Regular paths in graphs are explored in depth in [8]
(Mendelzon & Wood), where only paths with particular path labels are
considered ... in [8], a regular expression is defined for the alphabet
Omega, where above, its defined for E."

This package implements that older, label-level formulation so the two can
be compared (and because label-level RPQs are what SPARQL property paths and
Cypher relationship patterns actually standardized):

* a regex AST over Omega (this module) with Thompson NFA and subset-
  construction DFA — the alphabet is finite, so full determinization works
  here, unlike the edge-set alphabet of the main algebra;
* RPQ evaluation by product construction (:mod:`repro.rpq.evaluation`),
  including Mendelzon & Wood's *regular simple path* variant.

The AST is deliberately separate from :mod:`repro.regex`: label expressions
have no join/product distinction (labels carry no endpoints) and support
classical determinization; conflating the two would blur exactly the
contrast the paper draws.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import RegexError

__all__ = [
    "LabelExpr",
    "LabelEmpty",
    "LabelEpsilon",
    "LabelSymbol",
    "LabelUnion",
    "LabelConcat",
    "LabelStar",
    "sym",
    "lunion",
    "lconcat",
    "lstar",
    "loptional",
    "lplus",
    "LabelNFA",
    "LabelDFA",
    "build_label_nfa",
    "determinize",
    "accepts_label_word",
]


class LabelExpr:
    """Base class for regular expressions over the label alphabet."""

    __slots__ = ()

    # -- pickling ---------------------------------------------------------
    # Like RegexExpr, subclasses pair __slots__ with a raising __setattr__,
    # which breaks pickle's default slot-state restore.  Route the state
    # protocol through object.__setattr__ (the constructors' side door) so
    # label expressions survive the trip to ParallelExecutor workers.

    def __getstate__(self) -> Dict[str, object]:
        state: Dict[str, object] = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __or__(self, other: "LabelExpr") -> "LabelExpr":
        return LabelUnion((self, other))

    def __add__(self, other: "LabelExpr") -> "LabelExpr":
        return LabelConcat((self, other))

    def star(self) -> "LabelExpr":
        """Kleene star."""
        return LabelStar(self)

    def plus(self) -> "LabelExpr":
        """One or more repetitions."""
        return LabelConcat((self, LabelStar(self)))

    def optional(self) -> "LabelExpr":
        """Zero or one occurrence."""
        return LabelUnion((self, LabelEpsilon()))

    def symbols(self) -> FrozenSet[Hashable]:
        """All labels mentioned by the expression."""
        out: Set[Hashable] = set()
        stack: List[LabelExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, LabelSymbol):
                out.add(node.label)
            elif isinstance(node, (LabelUnion, LabelConcat)):
                stack.extend(node.parts)
            elif isinstance(node, LabelStar):
                stack.append(node.inner)
        return frozenset(out)

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


class LabelEmpty(LabelExpr):
    """The empty language."""

    __slots__ = ()

    def _key(self):
        return ()

    def __repr__(self):
        return "LabelEmpty()"


class LabelEpsilon(LabelExpr):
    """The language of the empty word."""

    __slots__ = ()

    def _key(self):
        return ()

    def __repr__(self):
        return "LabelEpsilon()"


class LabelSymbol(LabelExpr):
    """A single label from Omega."""

    __slots__ = ("label",)

    def __init__(self, label: Hashable):
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, value):
        raise AttributeError("label expressions are immutable")

    def _key(self):
        return (self.label,)

    def __repr__(self):
        return "LabelSymbol({!r})".format(self.label)


class LabelUnion(LabelExpr):
    """Alternation."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[LabelExpr]):
        object.__setattr__(self, "parts", tuple(parts))
        if not self.parts:
            raise RegexError("LabelUnion needs at least one operand")

    def __setattr__(self, name, value):
        raise AttributeError("label expressions are immutable")

    def _key(self):
        return self.parts

    def __repr__(self):
        return "LabelUnion({!r})".format(list(self.parts))


class LabelConcat(LabelExpr):
    """Concatenation (over label words, no join condition exists)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[LabelExpr]):
        object.__setattr__(self, "parts", tuple(parts))
        if not self.parts:
            raise RegexError("LabelConcat needs at least one operand")

    def __setattr__(self, name, value):
        raise AttributeError("label expressions are immutable")

    def _key(self):
        return self.parts

    def __repr__(self):
        return "LabelConcat({!r})".format(list(self.parts))


class LabelStar(LabelExpr):
    """Kleene star."""

    __slots__ = ("inner",)

    def __init__(self, inner: LabelExpr):
        object.__setattr__(self, "inner", inner)

    def __setattr__(self, name, value):
        raise AttributeError("label expressions are immutable")

    def _key(self):
        return (self.inner,)

    def __repr__(self):
        return "LabelStar({!r})".format(self.inner)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

def sym(label: Hashable) -> LabelSymbol:
    """One label symbol."""
    return LabelSymbol(label)


def lunion(*parts: LabelExpr) -> LabelExpr:
    """Alternation of label expressions."""
    if not parts:
        return LabelEmpty()
    if len(parts) == 1:
        return parts[0]
    return LabelUnion(parts)


def lconcat(*parts: LabelExpr) -> LabelExpr:
    """Concatenation of label expressions."""
    if not parts:
        return LabelEpsilon()
    if len(parts) == 1:
        return parts[0]
    return LabelConcat(parts)


def lstar(expr: LabelExpr) -> LabelStar:
    """Kleene star."""
    return LabelStar(expr)


def loptional(expr: LabelExpr) -> LabelExpr:
    """Zero or one."""
    return expr.optional()


def lplus(expr: LabelExpr) -> LabelExpr:
    """One or more."""
    return expr.plus()


# ----------------------------------------------------------------------
# NFA / DFA over the finite label alphabet
# ----------------------------------------------------------------------

class LabelNFA:
    """Thompson NFA over labels (single start/accept, epsilon moves)."""

    def __init__(self) -> None:
        self.num_states = 0
        self.start = 0
        self.accept = 0
        self.epsilon: List[List[int]] = []
        self.transitions: List[Dict[Hashable, List[int]]] = []

    def new_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        self.epsilon.append([])
        self.transitions.append({})
        return state

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon[source].append(target)

    def add_transition(self, source: int, label: Hashable, target: int) -> None:
        self.transitions[source].setdefault(label, []).append(target)

    def closure(self, states: Iterable[int]) -> FrozenSet[int]:
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for target in self.epsilon[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def step(self, states: FrozenSet[int], label: Hashable) -> FrozenSet[int]:
        out: Set[int] = set()
        for state in states:
            out.update(self.transitions[state].get(label, ()))
        return self.closure(out)


def build_label_nfa(expression: LabelExpr) -> LabelNFA:
    """Thompson construction for label expressions."""
    nfa = LabelNFA()

    def build(expr: LabelExpr) -> Tuple[int, int]:
        if isinstance(expr, LabelEmpty):
            return nfa.new_state(), nfa.new_state()
        if isinstance(expr, LabelEpsilon):
            start, accept = nfa.new_state(), nfa.new_state()
            nfa.add_epsilon(start, accept)
            return start, accept
        if isinstance(expr, LabelSymbol):
            start, accept = nfa.new_state(), nfa.new_state()
            nfa.add_transition(start, expr.label, accept)
            return start, accept
        if isinstance(expr, LabelUnion):
            start, accept = nfa.new_state(), nfa.new_state()
            for part in expr.parts:
                ps, pa = build(part)
                nfa.add_epsilon(start, ps)
                nfa.add_epsilon(pa, accept)
            return start, accept
        if isinstance(expr, LabelConcat):
            first_start, current = build(expr.parts[0])
            for part in expr.parts[1:]:
                ps, pa = build(part)
                nfa.add_epsilon(current, ps)
                current = pa
            return first_start, current
        if isinstance(expr, LabelStar):
            inner_start, inner_accept = build(expr.inner)
            start, accept = nfa.new_state(), nfa.new_state()
            nfa.add_epsilon(start, inner_start)
            nfa.add_epsilon(start, accept)
            nfa.add_epsilon(inner_accept, inner_start)
            nfa.add_epsilon(inner_accept, accept)
            return start, accept
        raise RegexError("unknown label expression {!r}".format(expr))

    start, accept = build(expression)
    nfa.start = start
    nfa.accept = accept
    return nfa


class LabelDFA:
    """A deterministic automaton over the (finite) label alphabet.

    States are integers; ``transitions[state][label] -> state``; missing
    entries are the implicit dead state.  Built by subset construction —
    possible here precisely because Omega is finite (the paper's edge-set
    alphabet is not usefully finite, hence its NFA stays nondeterministic).
    """

    def __init__(self, start: int, accepting: FrozenSet[int],
                 transitions: List[Dict[Hashable, int]]):
        self.start = start
        self.accepting = accepting
        self.transitions = transitions

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: Optional[int], label: Hashable) -> Optional[int]:
        """One transition; None is the dead state."""
        if state is None:
            return None
        return self.transitions[state].get(label)

    def accepts(self, word: Iterable[Hashable]) -> bool:
        """Run the word; accept iff the final state is accepting."""
        state: Optional[int] = self.start
        for label in word:
            state = self.step(state, label)
            if state is None:
                return False
        return state in self.accepting

    def __repr__(self) -> str:
        return "LabelDFA<{} states, {} accepting>".format(
            self.num_states, len(self.accepting))


def determinize(nfa: LabelNFA, alphabet: Iterable[Hashable]) -> LabelDFA:
    """Subset construction over an explicit alphabet."""
    alphabet = list(alphabet)
    initial = nfa.closure({nfa.start})
    index: Dict[FrozenSet[int], int] = {initial: 0}
    transitions: List[Dict[Hashable, int]] = [{}]
    worklist = [initial]
    while worklist:
        subset = worklist.pop()
        source = index[subset]
        for label in alphabet:
            target_subset = nfa.step(subset, label)
            if not target_subset:
                continue
            if target_subset not in index:
                index[target_subset] = len(transitions)
                transitions.append({})
                worklist.append(target_subset)
            transitions[source][label] = index[target_subset]
    accepting = frozenset(
        state for subset, state in index.items() if nfa.accept in subset)
    return LabelDFA(0, accepting, transitions)


def accepts_label_word(expression: LabelExpr, word: Iterable[Hashable]) -> bool:
    """One-shot NFA membership for a label word."""
    nfa = build_label_nfa(expression)
    current = nfa.closure({nfa.start})
    for label in word:
        current = nfa.step(current, label)
        if not current:
            return False
    return nfa.accept in current
