"""Grammar-guided random walkers: Monte Carlo traversal under a regex.

The paper's authors' companion line of work ("grammar-based random
walkers") samples walks whose *next step* is constrained by an automaton
state — a random-walk approximation of the exact path semantics the
algebra computes.  :class:`GrammarWalker` implements that idea over this
library's NFA: each step, the walker epsilon-closes its configuration set,
enumerates the admissible ``(edge, target state)`` moves (respecting the
join-adjacency / product-exemption rules), and picks one uniformly at
random.

Uses:

* **visitation statistics** — run many walks, histogram the vertices;
  with enough samples the histogram tracks the exact witness-path counts
  (the tests compare against :func:`generate_paths` on small graphs),
* **sampled query answering** — accepted walks are exact members of the
  query's language (asserted against the recognizer), useful when the
  full result set is too large to materialize.

Fully deterministic given ``seed``; no global random state is touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.automata.nfa import NFA, build_nfa
from repro.core.path import EPSILON, Path
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import RegexExpr

__all__ = ["GrammarWalker", "WalkResult"]


@dataclass
class WalkResult:
    """One walk's outcome: the path taken and whether it ended accepted."""

    path: Path
    accepted: bool
    steps: int

    def __repr__(self) -> str:
        status = "accepted" if self.accepted else "rejected"
        return "WalkResult<{} after {} steps: {}>".format(
            status, self.steps, self.path)


class GrammarWalker:
    """A random walker whose moves are constrained by a regular expression.

    Parameters
    ----------
    graph:
        The multi-relational graph to walk.
    expression:
        The grammar (a :mod:`repro.regex` AST); only moves that keep the
        walk inside the expression's language-prefixes are admissible.
    seed:
        RNG seed; identical seeds produce identical walk sequences.
    stop_probability:
        When the walker sits in an accepting configuration, it halts with
        this probability (otherwise it keeps walking if moves exist).
        1.0 means "stop at the first acceptance" — shortest-biased; lower
        values explore longer members.
    """

    def __init__(self, graph: MultiRelationalGraph, expression: RegexExpr,
                 seed: int = 0, stop_probability: float = 0.5):
        if not 0.0 < stop_probability <= 1.0:
            raise ValueError("stop_probability must be in (0, 1]")
        self.graph = graph
        self.expression = expression
        self.nfa: NFA = build_nfa(expression)
        self.stop_probability = stop_probability
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------

    def _admissible_moves(self, configs: Dict[int, bool],
                          path: Path) -> List[Tuple[object, int]]:
        """All (edge, target state) moves from the current configuration set."""
        moves: List[Tuple[object, int]] = []
        seen = set()
        for state, exempt in configs.items():
            for matcher, target in self.nfa.consuming[state]:
                if path and not exempt:
                    candidates = matcher.candidate_edges(self.graph, path.head)
                else:
                    candidates = matcher.all_edges(self.graph)
                for e in candidates:
                    key = (e, target)
                    if key not in seen:
                        seen.add(key)
                        moves.append(key)
        return sorted(moves, key=repr)

    def walk(self, max_steps: int = 32) -> WalkResult:
        """One random walk; halts on acceptance (per ``stop_probability``),
        dead ends, or the step cap."""
        configs = self.nfa.closure({self.nfa.start: False})
        path = EPSILON
        steps = 0
        while True:
            accepting = self.nfa.accept in configs
            if accepting and self._rng.random() < self.stop_probability:
                return WalkResult(path=path, accepted=True, steps=steps)
            if steps >= max_steps:
                return WalkResult(path=path, accepted=accepting, steps=steps)
            moves = self._admissible_moves(configs, path)
            if not moves:
                return WalkResult(path=path, accepted=accepting, steps=steps)
            e, target = self._rng.choice(moves)
            path = path.concat(Path((e,)))
            steps += 1
            configs = self.nfa.closure({target: False})

    def sample_paths(self, num_walks: int, max_steps: int = 32) -> List[Path]:
        """The accepted paths from ``num_walks`` independent walks (with
        duplicates — it is a sampler, not a set)."""
        out = []
        for _ in range(num_walks):
            result = self.walk(max_steps)
            if result.accepted:
                out.append(result.path)
        return out

    def visit_counts(self, num_walks: int,
                     max_steps: int = 32) -> Dict[Hashable, int]:
        """Vertex visitation histogram over ``num_walks`` walks.

        Every vertex touched by a walk (accepted or not) counts once per
        touch; the start configuration contributes nothing until an edge is
        taken.
        """
        counts: Dict[Hashable, int] = {}
        for _ in range(num_walks):
            result = self.walk(max_steps)
            for vertex in result.path.vertices():
                counts[vertex] = counts.get(vertex, 0) + 1
        return counts

    def acceptance_rate(self, num_walks: int, max_steps: int = 32) -> float:
        """Fraction of walks ending accepted — a query 'answerability' probe."""
        if num_walks <= 0:
            raise ValueError("num_walks must be positive")
        accepted = sum(
            1 for _ in range(num_walks) if self.walk(max_steps).accepted)
        return accepted / float(num_walks)

    def __repr__(self) -> str:
        return "GrammarWalker<{} over {!r}>".format(
            self.nfa, self.graph.name or "graph")
