"""Compact integer-indexed adjacency snapshots and frontier traversal kernels.

The algebra's every operation — set-builder atoms ``[i, a, _]``,
concatenative joins, RPQ product traversals, the section IV-C projections —
bottoms out in label-restricted adjacency lookups.  The hash-indexed
:class:`~repro.graph.graph.MultiRelationalGraph` answers those lookups
correctly but expensively: each call walks dict buckets of :class:`Edge`
objects and hands back freshly allocated frozensets.  This module provides
the compact numeric backend the hot paths share instead:

* :class:`CompactAdjacency` — a read-only **snapshot** of a
  ``MultiRelationalGraph``.  Vertices and labels are interned to dense
  integer ids; per-label adjacency is stored CSR-style (a flat ``indptr``
  offset array plus a flat ``indices`` neighbor array), forward and
  reverse.  Neighbor expansion is then two list slices — no Edge objects,
  no set allocation, no hashing.
* :class:`CompactDiGraph` — the analogous snapshot of the single-relational
  :class:`~repro.algorithms.digraph.DiGraph`, with numpy edge/CSR arrays
  feeding the vectorized kernels used by ``bfs_distances``,
  ``weakly_connected_components`` and ``pagerank`` fast paths.
* :func:`rpq_pairs_compact` — the frontier-set BFS over the
  (vertex, dfa-state) product that powers :func:`repro.rpq.rpq_pairs` and
  the engine's ``pairs`` fast path.

Snapshot lifecycle
------------------
Snapshots are built **lazily** on first use and cached on the graph
instance, keyed on the graph's ``version()`` mutation counter:

* :func:`adjacency_snapshot` / :func:`digraph_snapshot` return the cached
  snapshot when ``snapshot.version == graph.version()`` and rebuild (one
  O(V + E) pass) otherwise — so a mutation-free query workload pays the
  build cost once, while any mutation transparently invalidates.
* Snapshots are immutable by convention: kernels only read them, and the
  owning graph never mutates one in place.  A stale snapshot is simply
  dropped, never patched.

numpy is optional.  The :class:`CompactAdjacency` kernels use plain Python
lists (scalar indexing of lists beats numpy scalars inside interpreter
loops); the :class:`CompactDiGraph` kernels are vectorized and require
numpy — when it is unavailable ``digraph_snapshot`` returns ``None`` and
callers keep their pure-Python implementations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

try:  # numpy accelerates the DiGraph kernels; everything else works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = [
    "CompactAdjacency",
    "CompactDiGraph",
    "adjacency_snapshot",
    "digraph_snapshot",
    "rpq_pairs_compact",
    "HAVE_NUMPY",
]

#: True when the vectorized DiGraph kernels are available.
HAVE_NUMPY = _np is not None

#: Attribute name under which snapshots are cached on graph instances.
_CACHE_ATTR = "_compact_snapshot_cache"


def _build_csr(num_vertices: int, pairs: Iterable[Tuple[int, int]],
               count: int) -> Tuple[List[int], List[int]]:
    """Counting-sort ``(source, target)`` id pairs into ``(indptr, indices)``.

    ``indices[indptr[v]:indptr[v + 1]]`` lists the targets of ``v``.
    """
    degree = [0] * num_vertices
    buffered = list(pairs)
    for source, _ in buffered:
        degree[source] += 1
    indptr = [0] * (num_vertices + 1)
    for v in range(num_vertices):
        indptr[v + 1] = indptr[v] + degree[v]
    cursor = list(indptr[:num_vertices])
    indices = [0] * count
    for source, target in buffered:
        indices[cursor[source]] = target
        cursor[source] += 1
    return indptr, indices


class CompactAdjacency:
    """A dense-integer snapshot of one :class:`MultiRelationalGraph` version.

    Attributes
    ----------
    version:
        The ``graph.version()`` this snapshot reflects.
    vertex_ids / vertex_of:
        Interning maps ``vertex -> id`` and ``id -> vertex`` (ids are dense,
        covering isolated vertices too).
    label_ids / label_of:
        The same for labels that carry at least one edge.
    forward / reverse:
        Per-label CSR pairs ``(indptr, indices)``; ``forward[l]`` lists
        out-neighbors along label ``l``, ``reverse[l]`` in-neighbors.
    """

    __slots__ = ("version", "vertex_ids", "vertex_of", "label_ids",
                 "label_of", "forward", "reverse", "num_edges")

    def __init__(self, version: int, vertex_ids: Dict[Hashable, int],
                 vertex_of: List[Hashable], label_ids: Dict[Hashable, int],
                 label_of: List[Hashable],
                 forward: List[Tuple[List[int], List[int]]],
                 reverse: List[Tuple[List[int], List[int]]],
                 num_edges: int):
        self.version = version
        self.vertex_ids = vertex_ids
        self.vertex_of = vertex_of
        self.label_ids = label_ids
        self.label_of = label_of
        self.forward = forward
        self.reverse = reverse
        self.num_edges = num_edges

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_of)

    @property
    def num_labels(self) -> int:
        return len(self.label_of)

    @classmethod
    def build(cls, graph) -> "CompactAdjacency":
        """One O(V + E) pass over the graph's internal edge dict."""
        vertex_of = list(graph._vertices)
        vertex_ids = {v: i for i, v in enumerate(vertex_of)}
        label_of = list(graph._rel)
        label_ids = {l: i for i, l in enumerate(label_of)}
        n = len(vertex_of)
        per_label: List[List[Tuple[int, int]]] = [[] for _ in label_of]
        for e in graph._edges:
            per_label[label_ids[e.label]].append(
                (vertex_ids[e.tail], vertex_ids[e.head]))
        forward = []
        reverse = []
        for pairs in per_label:
            forward.append(_build_csr(n, pairs, len(pairs)))
            reverse.append(_build_csr(n, ((h, t) for t, h in pairs), len(pairs)))
        return cls(graph.version(), vertex_ids, vertex_of, label_ids,
                   label_of, forward, reverse, len(graph._edges))

    def out_neighbors(self, vertex_id: int, label_id: int) -> List[int]:
        """Out-neighbor ids of ``vertex_id`` along ``label_id`` (a slice)."""
        indptr, indices = self.forward[label_id]
        return indices[indptr[vertex_id]:indptr[vertex_id + 1]]

    def in_neighbors(self, vertex_id: int, label_id: int) -> List[int]:
        """In-neighbor ids of ``vertex_id`` along ``label_id`` (a slice)."""
        indptr, indices = self.reverse[label_id]
        return indices[indptr[vertex_id]:indptr[vertex_id + 1]]

    def __repr__(self) -> str:
        return "CompactAdjacency<|V|={}, |E|={}, |Omega|={}, version={}>".format(
            self.num_vertices, self.num_edges, self.num_labels, self.version)


def adjacency_snapshot(graph) -> CompactAdjacency:
    """The cached :class:`CompactAdjacency` for ``graph``, rebuilt when stale.

    The snapshot is stored on the graph instance and keyed on
    ``graph.version()``; every mutation bumps the version, so a cached
    snapshot is valid exactly while the graph is untouched.
    """
    cached = getattr(graph, _CACHE_ATTR, None)
    if cached is not None and cached.version == graph.version():
        return cached
    snapshot = CompactAdjacency.build(graph)
    setattr(graph, _CACHE_ATTR, snapshot)
    return snapshot


# ----------------------------------------------------------------------
# RPQ frontier kernel (vertex x dfa-state product BFS over CSR slices)
# ----------------------------------------------------------------------

def rpq_pairs_compact(graph, dfa, sources: Optional[Iterable[Hashable]] = None
                      ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """All ``(x, y)`` pairs connected by a path whose label word is in the DFA.

    Frontier-set BFS over the (vertex, dfa-state) product using integer ids:
    one shared :class:`CompactAdjacency` snapshot, one per-(state, label)
    transition table resolving each DFA move directly to a CSR block, and a
    stamped ``visited`` array reused across all sources — so the multi-source
    sweep allocates O(V x states) once instead of per source.

    Semantically identical to the per-source product BFS
    (:func:`repro.rpq.evaluation.rpq_pairs_basic`); the equivalence tests
    enforce it on random graphs.
    """
    snapshot = adjacency_snapshot(graph)
    num_states = dfa.num_states
    n = snapshot.num_vertices
    vertex_ids = snapshot.vertex_ids
    vertex_of = snapshot.vertex_of

    if sources is None:
        source_ids: Iterable[int] = range(n)
    else:
        source_ids = sorted({vertex_ids[v] for v in sources if v in vertex_ids})

    # moves[state] -> [(indptr, indices, next_state), ...]: each DFA
    # transition that can actually fire in this graph, pre-resolved to the
    # CSR block of its label.
    moves: List[List[Tuple[List[int], List[int], int]]] = []
    for state in range(num_states):
        row = []
        for label, next_state in dfa.transitions[state].items():
            label_id = snapshot.label_ids.get(label)
            if label_id is not None:
                indptr, indices = snapshot.forward[label_id]
                row.append((indptr, indices, next_state))
        moves.append(row)
    accepting = [False] * num_states
    for state in dfa.accepting:
        accepting[state] = True
    start_state = dfa.start
    start_accepts = accepting[start_state]

    # visited/answered are stamped with the per-source sweep index, so the
    # O(V x states) product table is allocated once, not once per source.
    visited = [-1] * (n * num_states)
    answered = [-1] * n
    answers: List[Tuple[Hashable, Hashable]] = []

    # Frontier entries are packed ``vertex_id * num_states + state`` ints:
    # unlike tuples they are not cyclic-GC tracked, so the multi-million
    # entry sweeps do not trigger collector pauses.
    for stamp, source_id in enumerate(source_ids):
        source_vertex = vertex_of[source_id]
        visited[source_id * num_states + start_state] = stamp
        if start_accepts:
            answered[source_id] = stamp
            answers.append((source_vertex, source_vertex))
        frontier: List[int] = [source_id * num_states + start_state]
        while frontier:
            next_frontier: List[int] = []
            for packed in frontier:
                vertex_id, state = divmod(packed, num_states)
                for indptr, indices, next_state in moves[state]:
                    for neighbor in indices[indptr[vertex_id]:indptr[vertex_id + 1]]:
                        code = neighbor * num_states + next_state
                        if visited[code] != stamp:
                            visited[code] = stamp
                            if accepting[next_state] and answered[neighbor] != stamp:
                                answered[neighbor] = stamp
                                answers.append((source_vertex, vertex_of[neighbor]))
                            next_frontier.append(code)
            frontier = next_frontier
    return frozenset(answers)


# ----------------------------------------------------------------------
# Single-relational (DiGraph) snapshot + vectorized kernels
# ----------------------------------------------------------------------

class CompactDiGraph:
    """A numpy snapshot of one :class:`~repro.algorithms.digraph.DiGraph`.

    Holds interning maps plus flat edge arrays (``tails``, ``heads``,
    ``weights``) and forward/reverse/undirected CSR index arrays — the
    inputs the vectorized BFS, component flood-fill and pagerank kernels
    consume.  Only constructed when numpy is importable.
    """

    __slots__ = ("version", "vertex_ids", "vertex_of", "tails", "heads",
                 "weights", "fwd_indptr", "fwd_indices", "und_indptr",
                 "und_indices", "out_weight")

    def __init__(self, digraph):
        self.version = digraph.version()
        self.vertex_of = list(digraph._succ)
        self.vertex_ids = {v: i for i, v in enumerate(self.vertex_of)}
        n = len(self.vertex_of)
        tails: List[int] = []
        heads: List[int] = []
        weights: List[float] = []
        ids = self.vertex_ids
        for tail, successors in digraph._succ.items():
            tail_id = ids[tail]
            for head, weight in successors.items():
                tails.append(tail_id)
                heads.append(ids[head])
                weights.append(weight)
        self.tails = _np.asarray(tails, dtype=_np.int64)
        self.heads = _np.asarray(heads, dtype=_np.int64)
        self.weights = _np.asarray(weights, dtype=_np.float64)
        self.fwd_indptr, self.fwd_indices = self._csr(self.tails, self.heads, n)
        both_tails = _np.concatenate([self.tails, self.heads])
        both_heads = _np.concatenate([self.heads, self.tails])
        self.und_indptr, self.und_indices = self._csr(both_tails, both_heads, n)
        self.out_weight = _np.bincount(self.tails, weights=self.weights,
                                       minlength=n)

    @staticmethod
    def _csr(sources, targets, n):
        order = _np.argsort(sources, kind="stable")
        indices = targets[order]
        counts = _np.bincount(sources, minlength=n)
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(counts, out=indptr[1:])
        return indptr, indices

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_of)

    # -- kernels ----------------------------------------------------------

    def _frontier_expand(self, indptr, indices, frontier):
        """All CSR targets of the frontier ids, as one flat gather."""
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return None
        offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
        flat = _np.arange(total, dtype=_np.int64) - offsets
        return indices[_np.repeat(starts, counts) + flat]

    def bfs_levels(self, source_id: int):
        """Vectorized level-synchronous BFS: the distance array (-1 = unreached).

        Wide frontiers (more than ~1/8 of the vertices) switch from CSR
        slice-gathering to one masked scan of the flat edge arrays — the
        direction-optimizing trick's cheap cousin: when most vertices are
        active anyway, a single O(E) C pass beats assembling gather indices.
        """
        n = self.num_vertices
        distance = _np.full(n, -1, dtype=_np.int64)
        distance[source_id] = 0
        frontier = _np.asarray([source_id], dtype=_np.int64)
        wide = max(n >> 3, 32)
        tails, heads = self.tails, self.heads
        level = 0
        while frontier.size:
            level += 1
            if frontier.size >= wide:
                neighbors = heads[distance[tails] == level - 1]
            else:
                neighbors = self._frontier_expand(
                    self.fwd_indptr, self.fwd_indices, frontier)
                if neighbors is None:
                    break
            fresh = neighbors[distance[neighbors] < 0]
            if fresh.size == 0:
                break
            # Scatter the level, then recover the deduplicated frontier with
            # a linear scan — cheaper than sorting via np.unique.
            distance[fresh] = level
            frontier = _np.flatnonzero(distance == level)
        return distance

    def bfs_distances(self, source: Hashable) -> Dict[Hashable, int]:
        """Hop distances from ``source`` — same contract as the dict BFS."""
        distance = self.bfs_levels(self.vertex_ids[source])
        reached = _np.flatnonzero(distance >= 0)
        vertex_of = self.vertex_of
        if reached.size == len(vertex_of):
            return dict(zip(vertex_of, distance.tolist()))
        return {vertex_of[i]: d
                for i, d in zip(reached.tolist(), distance[reached].tolist())}

    def weak_component_labels(self):
        """Component id per vertex via flood fill on the undirected CSR."""
        n = self.num_vertices
        component = _np.full(n, -1, dtype=_np.int64)
        next_id = 0
        for seed in range(n):
            if component[seed] >= 0:
                continue
            component[seed] = next_id
            frontier = _np.asarray([seed], dtype=_np.int64)
            while frontier.size:
                neighbors = self._frontier_expand(
                    self.und_indptr, self.und_indices, frontier)
                if neighbors is None:
                    break
                fresh = neighbors[component[neighbors] < 0]
                if fresh.size == 0:
                    break
                frontier = _np.unique(fresh)
                component[frontier] = next_id
            next_id += 1
        return component

    def pagerank(self, damping: float, teleport, max_iterations: int,
                 tolerance: float) -> Optional[Dict[Hashable, float]]:
        """Vectorized power iteration (same update rule as the dict version).

        ``teleport`` maps vertex -> normalized teleport mass.  Returns None
        when the iteration cap is hit so the caller can raise its usual
        :class:`ConvergenceError`.
        """
        n = self.num_vertices
        teleport_vec = _np.asarray(
            [teleport[v] for v in self.vertex_of], dtype=_np.float64)
        out_weight = self.out_weight
        has_out = out_weight > 0.0
        safe_out = _np.where(has_out, out_weight, 1.0)
        tails, heads, weights = self.tails, self.heads, self.weights
        ranks = teleport_vec.copy()
        for _ in range(max_iterations):
            previous = ranks
            coefficient = _np.where(has_out, damping * previous / safe_out, 0.0)
            ranks = _np.bincount(heads, weights=coefficient[tails] * weights,
                                 minlength=n)
            dangling_mass = float(previous[~has_out].sum())
            ranks += (damping * dangling_mass + (1.0 - damping)) * teleport_vec
            if float(_np.abs(ranks - previous).sum()) < n * tolerance:
                return dict(zip(self.vertex_of, ranks.tolist()))
        return None

    def __repr__(self) -> str:
        return "CompactDiGraph<|V|={}, |E|={}, version={}>".format(
            self.num_vertices, len(self.tails), self.version)


def digraph_snapshot(digraph) -> Optional[CompactDiGraph]:
    """The cached :class:`CompactDiGraph`, or None when numpy is missing.

    Same lifecycle as :func:`adjacency_snapshot`: cached on the instance,
    keyed on ``digraph.version()``, rebuilt lazily after any mutation.
    """
    if _np is None:
        return None
    cached = getattr(digraph, _CACHE_ATTR, None)
    if cached is not None and cached.version == digraph.version():
        return cached
    snapshot = CompactDiGraph(digraph)
    setattr(digraph, _CACHE_ATTR, snapshot)
    return snapshot
