"""Compact integer-indexed adjacency snapshots and frontier traversal kernels.

The algebra's every operation — set-builder atoms ``[i, a, _]``,
concatenative joins, RPQ product traversals, the section IV-C projections —
bottoms out in label-restricted adjacency lookups.  The hash-indexed
:class:`~repro.graph.graph.MultiRelationalGraph` answers those lookups
correctly but expensively: each call walks dict buckets of :class:`Edge`
objects and hands back freshly allocated frozensets.  This module provides
the compact numeric backend the hot paths share instead:

* :class:`CompactAdjacency` — a read-only base **snapshot** of a
  ``MultiRelationalGraph``.  Vertices and labels are interned to dense
  integer ids; per-label adjacency is stored CSR-style (a flat ``indptr``
  offset array plus a flat ``indices`` neighbor array), forward and
  reverse.  Neighbor expansion is then two list slices — no Edge objects,
  no set allocation, no hashing.
* :class:`DeltaAdjacency` — a **delta overlay** over a base snapshot:
  per-label add/remove buffers replayed from the graph's mutation journal,
  so point mutations cost O(delta) instead of an O(V + E) rebuild.  Kernels
  consult ``base CSR + delta`` through the shared block interface.
* :class:`CompactDiGraph` — the analogous snapshot of the single-relational
  :class:`~repro.algorithms.digraph.DiGraph`, with numpy edge/CSR arrays
  feeding the vectorized BFS / component / pagerank kernels plus the
  integer-indexed Tarjan SCC, geodesic-sweep and centrality kernels.
* :func:`rpq_pairs_compact` — the frontier-set BFS over the
  (vertex, dfa-state) product that powers :func:`repro.rpq.rpq_pairs` and
  the engine's ``pairs`` fast path.

Snapshot lifecycle (incremental)
--------------------------------
Snapshots are built **lazily** on first use and cached on the graph
instance, keyed on the graph's ``version()`` mutation counter:

* A mutation-free workload pays the O(V + E) base build once and reuses it.
* After mutations, :func:`adjacency_snapshot` replays the graph's
  structural **mutation journal** (``graph.journal_since``) into a
  :class:`DeltaAdjacency` overlay — O(delta) work, no rebuild.  The overlay
  is itself cached and extended in place by subsequent mutation batches.
* Once the accumulated delta exceeds a fraction of the base edge count
  (:data:`COMPACTION_FRACTION`, floored at :data:`COMPACTION_MIN_OPS`), the
  overlay is **compacted**: folded back into a fresh base CSR, restoring
  slice-only adjacency lookups.
* When the journal cannot cover the gap (capped, or the graph was never
  journaled that far back), the cache transparently falls back to a full
  rebuild — incrementality is a fast path, never a correctness dependency.

:class:`CompactDiGraph` follows the same protocol with vectorized array
surgery: removed base edges are masked with one ``np.isin`` over packed
edge keys, added edges are appended, and the CSR index arrays are
re-derived by C-speed sorts — orders of magnitude cheaper than re-walking
the successor dicts in the interpreter.  Handed-out ``CompactDiGraph``
instances stay immutable; ``DeltaAdjacency`` overlays are live views that
track their graph (documented, deliberate — kernels fetch them per call).

numpy is optional.  The :class:`CompactAdjacency`/:class:`DeltaAdjacency`
kernels use plain Python lists (scalar indexing of lists beats numpy
scalars inside interpreter loops); the :class:`CompactDiGraph` kernels are
vectorized and require numpy — when it is unavailable ``digraph_snapshot``
returns ``None`` and callers keep their pure-Python implementations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

try:  # numpy accelerates the DiGraph kernels; everything else works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = [
    "CompactAdjacency",
    "DeltaAdjacency",
    "CompactDiGraph",
    "adjacency_snapshot",
    "digraph_snapshot",
    "digraph_snapshot_if_large",
    "fold_adjacency_pairs",
    "rpq_pairs_compact",
    "rpq_pairs_on_snapshot",
    "rpq_pairs_backward",
    "rpq_pairs_bidirectional",
    "snapshot_state",
    "compaction_due",
    "COMPACTION_MIN_OPS",
    "COMPACTION_FRACTION",
    "HAVE_NUMPY",
]

#: True when the vectorized DiGraph kernels are available.
HAVE_NUMPY = _np is not None

#: Attribute name under which snapshots are cached on graph instances.
_CACHE_ATTR = "_compact_snapshot_cache"

#: Delta overlays are folded back into a fresh base CSR once their op count
#: exceeds ``max(COMPACTION_MIN_OPS, COMPACTION_FRACTION * |E_base|)``.
COMPACTION_MIN_OPS = 64
COMPACTION_FRACTION = 0.25

#: Bit width of the head id inside a packed ``(tail << SHIFT) | head`` edge
#: key — collision-free for any graph this process can hold.
_KEY_SHIFT = 32

# Shared immutable placeholders for clean (delta-free) adjacency blocks.
_NO_DELTA: Dict[int, list] = {}
_EMPTY_INDPTR = (0,)
_EMPTY_INDICES: Tuple[int, ...] = ()
_EMPTY_ROW: Tuple[int, ...] = ()


def compaction_due(delta_ops: int, base_edges: int) -> bool:
    """True when an overlay of ``delta_ops`` ops over ``base_edges`` base
    edges has outgrown its usefulness and should fold into a fresh CSR."""
    return delta_ops > max(COMPACTION_MIN_OPS,
                           int(COMPACTION_FRACTION * base_edges))


def _build_csr(num_vertices: int, pairs: Iterable[Tuple[int, int]],
               count: int) -> Tuple[List[int], List[int]]:
    """Counting-sort ``(source, target)`` id pairs into ``(indptr, indices)``.

    ``indices[indptr[v]:indptr[v + 1]]`` lists the targets of ``v``.
    """
    degree = [0] * num_vertices
    buffered = list(pairs)
    for source, _ in buffered:
        degree[source] += 1
    indptr = [0] * (num_vertices + 1)
    for v in range(num_vertices):
        indptr[v + 1] = indptr[v] + degree[v]
    cursor = list(indptr[:num_vertices])
    indices = [0] * count
    for source, target in buffered:
        indices[cursor[source]] = target
        cursor[source] += 1
    return indptr, indices


class CompactAdjacency:
    """A dense-integer snapshot of one :class:`MultiRelationalGraph` version.

    Attributes
    ----------
    version:
        The ``graph.version()`` this snapshot reflects.
    vertex_ids / vertex_of:
        Interning maps ``vertex -> id`` and ``id -> vertex`` (ids are dense,
        covering isolated vertices too).
    label_ids / label_of:
        The same for labels that carry at least one edge.
    forward / reverse:
        Per-label CSR pairs ``(indptr, indices)``; ``forward[l]`` lists
        out-neighbors along label ``l``, ``reverse[l]`` in-neighbors.
    """

    __slots__ = ("version", "vertex_ids", "vertex_of", "label_ids",
                 "label_of", "forward", "reverse", "num_edges")

    def __init__(self, version: int, vertex_ids: Dict[Hashable, int],
                 vertex_of: List[Hashable], label_ids: Dict[Hashable, int],
                 label_of: List[Hashable],
                 forward: List[Tuple[List[int], List[int]]],
                 reverse: List[Tuple[List[int], List[int]]],
                 num_edges: int):
        self.version = version
        self.vertex_ids = vertex_ids
        self.vertex_of = vertex_of
        self.label_ids = label_ids
        self.label_of = label_of
        self.forward = forward
        self.reverse = reverse
        self.num_edges = num_edges

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_of)

    @property
    def num_labels(self) -> int:
        return len(self.label_of)

    @property
    def num_slots(self) -> int:
        """Vertex-id address space (== ``num_vertices``: no tombstones)."""
        return len(self.vertex_of)

    @classmethod
    def from_arrays(cls, version: int, vertex_of: List[Hashable],
                    label_of: List[Hashable],
                    forward: List[Tuple], reverse: List[Tuple],
                    num_edges: int) -> "CompactAdjacency":
        """Zero-copy construction from prebuilt CSR arrays.

        The per-label ``(indptr, indices)`` pairs are adopted as-is — plain
        lists, ``array.array`` views or numpy ``memmap`` slices all work,
        because every kernel only ever indexes and slices them.  This is the
        snapshot store's reopen path (:mod:`repro.storage.snapshots`): a
        graph mapped back from disk serves queries without re-walking any
        edge dict and, under ``np.memmap``, without even faulting in CSR
        pages the traversal never touches.  Only the O(V + Omega) interning
        dicts are materialized here.
        """
        vertex_ids = {v: i for i, v in enumerate(vertex_of)}
        label_ids = {l: i for i, l in enumerate(label_of)}
        return cls(version, vertex_ids, vertex_of, label_ids, label_of,
                   forward, reverse, num_edges)

    @classmethod
    def build(cls, graph) -> "CompactAdjacency":
        """One O(V + E) pass over the graph's internal edge dict."""
        vertex_of = list(graph._vertices)
        vertex_ids = {v: i for i, v in enumerate(vertex_of)}
        label_of = list(graph._rel)
        label_ids = {l: i for i, l in enumerate(label_of)}
        n = len(vertex_of)
        per_label: List[List[Tuple[int, int]]] = [[] for _ in label_of]
        for e in graph._edges:
            per_label[label_ids[e.label]].append(
                (vertex_ids[e.tail], vertex_ids[e.head]))
        forward = []
        reverse = []
        for pairs in per_label:
            forward.append(_build_csr(n, pairs, len(pairs)))
            reverse.append(_build_csr(n, ((h, t) for t, h in pairs), len(pairs)))
        return cls(graph.version(), vertex_ids, vertex_of, label_ids,
                   label_of, forward, reverse, len(graph._edges))

    def live_vertex_ids(self):
        """All vertex ids (every slot is live in a base snapshot)."""
        return range(len(self.vertex_of))

    def out_block(self, label_id: int):
        """``(indptr, indices, added, removed, base_n)`` for one label.

        The shared kernel block interface: base CSR arrays plus the per-label
        delta dicts (empty here — a base snapshot carries no delta) and the
        vertex count the CSR covers.
        """
        indptr, indices = self.forward[label_id]
        return indptr, indices, _NO_DELTA, _NO_DELTA, len(self.vertex_of)

    def in_block(self, label_id: int):
        """Reverse-direction counterpart of :meth:`out_block`."""
        indptr, indices = self.reverse[label_id]
        return indptr, indices, _NO_DELTA, _NO_DELTA, len(self.vertex_of)

    def out_neighbors(self, vertex_id: int, label_id: int) -> List[int]:
        """Out-neighbor ids of ``vertex_id`` along ``label_id`` (a slice)."""
        indptr, indices = self.forward[label_id]
        return indices[indptr[vertex_id]:indptr[vertex_id + 1]]

    def in_neighbors(self, vertex_id: int, label_id: int) -> List[int]:
        """In-neighbor ids of ``vertex_id`` along ``label_id`` (a slice)."""
        indptr, indices = self.reverse[label_id]
        return indices[indptr[vertex_id]:indptr[vertex_id + 1]]

    def __repr__(self) -> str:
        return "CompactAdjacency<|V|={}, |E|={}, |Omega|={}, version={}>".format(
            self.num_vertices, self.num_edges, self.num_labels, self.version)


class DeltaAdjacency:
    """A delta overlay over a base :class:`CompactAdjacency`.

    Holds per-label add/remove buffers (dicts keyed by vertex id) replayed
    from the graph's mutation journal, plus extended interning maps for
    vertices and labels born after the base build.  Removed vertices leave
    **tombstone** slots: their id stays allocated (dead) and a re-added
    vertex gets a fresh id, so base CSR ids never ambiguate.  Kernels read
    through :meth:`out_block`/:meth:`in_block` exactly as they do on a base
    snapshot; clean labels still resolve to raw CSR slices.

    Unlike a base snapshot, an overlay is a **live view**: it is extended in
    place as further mutation batches are replayed into it.  Fetch it per
    query (as every kernel does) rather than holding one across mutations.
    """

    __slots__ = ("base", "version", "vertex_ids", "vertex_of", "label_ids",
                 "label_of", "added_out", "added_in", "removed_out",
                 "removed_in", "dead_vertices", "num_edges", "delta_ops")

    def __init__(self, base: CompactAdjacency):
        self.base = base
        self.version = base.version
        self.vertex_ids = dict(base.vertex_ids)
        self.vertex_of = list(base.vertex_of)
        self.label_ids = dict(base.label_ids)
        self.label_of = list(base.label_of)
        # label_id -> {vertex_id: [neighbor_id, ...]} (insertion-ordered).
        self.added_out: Dict[int, Dict[int, List[int]]] = {}
        self.added_in: Dict[int, Dict[int, List[int]]] = {}
        # label_id -> {vertex_id: {neighbor_id, ...}} masking base edges.
        self.removed_out: Dict[int, Dict[int, Set[int]]] = {}
        self.removed_in: Dict[int, Dict[int, Set[int]]] = {}
        self.dead_vertices: Set[int] = set()
        self.num_edges = base.num_edges
        self.delta_ops = 0

    @property
    def num_vertices(self) -> int:
        """Live vertex count (tombstoned slots excluded)."""
        return len(self.vertex_ids)

    @property
    def num_labels(self) -> int:
        return len(self.label_of)

    @property
    def num_slots(self) -> int:
        """Vertex-id address space, dead slots included (array sizing)."""
        return len(self.vertex_of)

    # -- journal replay ----------------------------------------------------

    def apply(self, entries: List[Tuple]) -> None:
        """Replay journal entries (``(version, op, *args)``) into the delta."""
        for entry in entries:
            op = entry[1]
            if op == "+e":
                self._add_edge(entry[2], entry[3], entry[4])
            elif op == "-e":
                self._remove_edge(entry[2], entry[3], entry[4])
            elif op == "+v":
                self._add_vertex(entry[2])
            elif op == "-v":
                self._remove_vertex(entry[2])
        self.delta_ops += len(entries)

    def _add_vertex(self, vertex: Hashable) -> None:
        if vertex in self.vertex_ids:
            return
        self.vertex_ids[vertex] = len(self.vertex_of)
        self.vertex_of.append(vertex)

    def _remove_vertex(self, vertex: Hashable) -> None:
        # Incident edges were already journaled as "-e" ops; only the slot
        # dies.  The tombstoned id is unreachable from here on.
        self.dead_vertices.add(self.vertex_ids.pop(vertex))

    def _add_edge(self, tail: Hashable, label: Hashable, head: Hashable) -> None:
        label_id = self.label_ids.get(label)
        if label_id is None:
            label_id = len(self.label_of)
            self.label_ids[label] = label_id
            self.label_of.append(label)
        tail_id = self.vertex_ids[tail]
        head_id = self.vertex_ids[head]
        removed = self.removed_out.get(label_id)
        mask = removed.get(tail_id) if removed else None
        if mask and head_id in mask:
            # Re-adding a base edge deleted earlier in this delta: unmask it.
            mask.discard(head_id)
            if not mask:
                del removed[tail_id]
            reverse_mask = self.removed_in[label_id][head_id]
            reverse_mask.discard(tail_id)
            if not reverse_mask:
                del self.removed_in[label_id][head_id]
        else:
            self.added_out.setdefault(label_id, {}) \
                .setdefault(tail_id, []).append(head_id)
            self.added_in.setdefault(label_id, {}) \
                .setdefault(head_id, []).append(tail_id)
        self.num_edges += 1

    def _remove_edge(self, tail: Hashable, label: Hashable, head: Hashable) -> None:
        label_id = self.label_ids[label]
        tail_id = self.vertex_ids[tail]
        head_id = self.vertex_ids[head]
        added = self.added_out.get(label_id)
        grown = added.get(tail_id) if added else None
        if grown is not None and head_id in grown:
            # The edge only ever lived in the delta: retract it.
            grown.remove(head_id)
            if not grown:
                del added[tail_id]
            reverse_grown = self.added_in[label_id][head_id]
            reverse_grown.remove(tail_id)
            if not reverse_grown:
                del self.added_in[label_id][head_id]
        else:
            self.removed_out.setdefault(label_id, {}) \
                .setdefault(tail_id, set()).add(head_id)
            self.removed_in.setdefault(label_id, {}) \
                .setdefault(head_id, set()).add(tail_id)
        self.num_edges -= 1

    # -- reads -------------------------------------------------------------

    def live_vertex_ids(self):
        """Ids of live vertices (tombstoned slots skipped)."""
        dead = self.dead_vertices
        if not dead:
            return range(len(self.vertex_of))
        return [i for i in range(len(self.vertex_of)) if i not in dead]

    def out_block(self, label_id: int):
        """``(indptr, indices, added, removed, base_n)`` for one label."""
        base = self.base
        if label_id < len(base.forward):
            indptr, indices = base.forward[label_id]
            base_n = base.num_vertices
        else:  # label born after the base build: delta-only.
            indptr, indices, base_n = _EMPTY_INDPTR, _EMPTY_INDICES, 0
        return (indptr, indices,
                self.added_out.get(label_id, _NO_DELTA),
                self.removed_out.get(label_id, _NO_DELTA),
                base_n)

    def in_block(self, label_id: int):
        """Reverse-direction counterpart of :meth:`out_block`."""
        base = self.base
        if label_id < len(base.reverse):
            indptr, indices = base.reverse[label_id]
            base_n = base.num_vertices
        else:
            indptr, indices, base_n = _EMPTY_INDPTR, _EMPTY_INDICES, 0
        return (indptr, indices,
                self.added_in.get(label_id, _NO_DELTA),
                self.removed_in.get(label_id, _NO_DELTA),
                base_n)

    @staticmethod
    def _merge(block, vertex_id: int) -> List[int]:
        indptr, indices, added, removed, base_n = block
        if vertex_id < base_n:
            neighbors = indices[indptr[vertex_id]:indptr[vertex_id + 1]]
        else:
            neighbors = _EMPTY_ROW
        mask = removed.get(vertex_id) if removed else None
        if mask:
            neighbors = [x for x in neighbors if x not in mask]
        grown = added.get(vertex_id) if added else None
        if grown:
            return list(neighbors) + grown
        return list(neighbors)

    def out_neighbors(self, vertex_id: int, label_id: int) -> List[int]:
        """Out-neighbor ids: base slice minus removals plus additions."""
        return self._merge(self.out_block(label_id), vertex_id)

    def in_neighbors(self, vertex_id: int, label_id: int) -> List[int]:
        """In-neighbor ids: base slice minus removals plus additions."""
        return self._merge(self.in_block(label_id), vertex_id)

    def __repr__(self) -> str:
        return ("DeltaAdjacency<|V|={}, |E|={}, |Omega|={}, version={}, "
                "delta_ops={} over base v{}>").format(
            self.num_vertices, self.num_edges, self.num_labels,
            self.version, self.delta_ops, self.base.version)


def fold_adjacency_pairs(view) -> Tuple[List[Hashable], List[Hashable],
                                        List[List[Tuple[int, int]]], int]:
    """Flatten any snapshot view to ``(vertex_of, label_of, pairs, |E|)``.

    The one shared fold: works on a clean :class:`CompactAdjacency` and on
    a :class:`DeltaAdjacency` overlay alike (both expose
    ``live_vertex_ids`` / ``out_neighbors``) — tombstoned vertex slots are
    dropped and ids re-densified, per-label edge pairs come out merged
    (base minus removals plus additions).  Both the snapshot store's
    checkpoint fold (:func:`repro.storage.snapshots.fold_view`) and the
    sharding layer's overlay densification build on this, so the fold
    invariants live in exactly one place.
    """
    live = list(view.live_vertex_ids())
    slots = view.num_slots
    remap: Optional[List[int]] = None
    if len(live) != slots:
        remap = [-1] * slots
        for new_id, old_id in enumerate(live):
            remap[old_id] = new_id
    vertex_of = [view.vertex_of[i] for i in live]
    label_of = list(view.label_of)
    per_label: List[List[Tuple[int, int]]] = []
    num_edges = 0
    for label_id in range(len(label_of)):
        pairs: List[Tuple[int, int]] = []
        for new_id, old_id in enumerate(live):
            for neighbor in view.out_neighbors(old_id, label_id):
                pairs.append((new_id,
                              remap[neighbor] if remap else int(neighbor)))
        per_label.append(pairs)
        num_edges += len(pairs)
    return vertex_of, label_of, per_label, num_edges


def adjacency_snapshot(graph, incremental: bool = True):
    """The cached compact adjacency for ``graph``, patched or rebuilt when stale.

    Returns a :class:`CompactAdjacency` (clean cache or fresh build) or a
    :class:`DeltaAdjacency` (journal-replayed overlay) — both expose the
    same read interface.  The incremental path costs O(delta) per mutation
    batch; it degrades to a full O(V + E) rebuild when the journal cannot
    cover the gap, when ``incremental=False``, or when the accumulated
    delta crosses the compaction threshold (:func:`compaction_due`).
    """
    cached = getattr(graph, _CACHE_ATTR, None)
    version = graph.version()
    if cached is not None and cached.version == version:
        return cached
    if incremental and cached is not None:
        entries = graph.journal_since(cached.version)
        if entries is not None:
            if not entries:
                # Property-only version bumps: structure unchanged, retag
                # the cached snapshot instead of forming a useless overlay.
                cached.version = version
                graph.prune_journal(version)
                return cached
            overlay = cached if isinstance(cached, DeltaAdjacency) \
                else DeltaAdjacency(cached)
            overlay.apply(entries)
            overlay.version = version
            if not compaction_due(overlay.delta_ops, overlay.base.num_edges):
                setattr(graph, _CACHE_ATTR, overlay)
                graph.prune_journal(version)
                return overlay
            # Threshold crossed: fall through and fold into a fresh base.
    snapshot = CompactAdjacency.build(graph)
    setattr(graph, _CACHE_ATTR, snapshot)
    graph.prune_journal(version)
    return snapshot


def snapshot_state(graph) -> str:
    """A one-line description of the graph's compact-snapshot cache state.

    Surfaced by ``Engine.explain`` so snapshot staleness and overlay growth
    are visible next to the plan.
    """
    cached = getattr(graph, _CACHE_ATTR, None)
    if cached is None:
        return "cold (first compact query builds the base CSR)"
    if isinstance(cached, _DiGraphDelta):
        cached = cached.snapshot
    pending = graph.version() - cached.version
    suffix = ", {} mutation(s) pending replay".format(pending) if pending else ""
    if isinstance(cached, DeltaAdjacency):
        return "delta overlay ({} op(s) over base v{}){}".format(
            cached.delta_ops, cached.base.version, suffix)
    return "base CSR (v{}){}".format(cached.version, suffix)


# ----------------------------------------------------------------------
# RPQ frontier kernels (vertex x dfa-state product BFS over CSR + delta)
# ----------------------------------------------------------------------

def _forward_moves(snapshot, dfa) -> List[List[Tuple]]:
    """``moves[state] -> [(out_block fields..., next_state)]``.

    Each DFA transition that can actually fire in this graph, pre-resolved
    to the *forward* adjacency block of its label.

    Consumers deliberately inline the block's slice-merge (base CSR slice
    minus removed plus added) in their hot loops rather than calling a
    shared helper — a per-neighbor-expansion function call costs more than
    the merge itself at interpreter speed.  The four inlined copies (the
    forward, backward, and both bidirectional expansions) must stay
    semantically identical; the differential suite pins each one to the
    dict reference under churn.
    """
    moves: List[List[Tuple]] = []
    for state in range(dfa.num_states):
        row = []
        for label, next_state in dfa.transitions[state].items():
            label_id = snapshot.label_ids.get(label)
            if label_id is not None:
                indptr, indices, added, removed, base_n = \
                    snapshot.out_block(label_id)
                row.append((indptr, indices, added, removed, base_n,
                            next_state))
        moves.append(row)
    return moves


def _backward_moves(snapshot, dfa) -> List[List[Tuple]]:
    """``moves[state] -> [(in_block fields..., previous_state)]``.

    The DFA's transition relation reversed: for every ``p --a--> q`` the
    row of ``q`` holds label ``a``'s *reverse* adjacency block and ``p``,
    so a backward product step walks in-neighbors while undoing the DFA
    move — exactly the product automaton of the reversed graph with the
    reversed NFA, restricted to the states the forward DFA already built.
    """
    moves: List[List[Tuple]] = [[] for _ in range(dfa.num_states)]
    for state in range(dfa.num_states):
        for label, next_state in dfa.transitions[state].items():
            label_id = snapshot.label_ids.get(label)
            if label_id is not None:
                indptr, indices, added, removed, base_n = \
                    snapshot.in_block(label_id)
                moves[next_state].append((indptr, indices, added, removed,
                                          base_n, state))
    return moves


def _vertex_flag_array(slots: int, vertex_ids, vertices
                       ) -> Tuple[Optional[bytearray], int]:
    """``(flags, live_count)``: a per-slot membership byte array for a
    vertex filter, or ``(None, 0)`` when the filter is absent."""
    if vertices is None:
        return None, 0
    flags = bytearray(slots)
    count = 0
    for vertex in vertices:
        vertex_id = vertex_ids.get(vertex)
        if vertex_id is not None and not flags[vertex_id]:
            flags[vertex_id] = 1
            count += 1
    return flags, count


def rpq_pairs_compact(graph, dfa, sources: Optional[Iterable[Hashable]] = None,
                      targets: Optional[Iterable[Hashable]] = None
                      ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """All ``(x, y)`` pairs connected by a path whose label word is in the DFA.

    Frontier-set BFS over the (vertex, dfa-state) product using integer ids:
    one shared compact snapshot (base CSR, or base + delta overlay after
    mutations), one per-(state, label) transition table resolving each DFA
    move directly to an adjacency block, and a stamped ``visited`` array
    reused across all sources — so the multi-source sweep allocates
    O(V x states) once instead of per source.  Clean labels expand by raw
    CSR slice; labels carrying delta edges merge the slice with the
    overlay's per-vertex add/remove buffers.

    ``targets`` restricts the emitted pairs to those whose target is in the
    set; once a source has answered every live target its sweep stops at
    the next level boundary instead of exhausting the reachable cone.

    Semantically identical to the per-source product BFS
    (:func:`repro.rpq.evaluation.rpq_pairs_basic`); the equivalence and
    differential tests enforce it on random mutating graphs.
    """
    return rpq_pairs_on_snapshot(adjacency_snapshot(graph), dfa,
                                 sources=sources, targets=targets)


def rpq_pairs_on_snapshot(snapshot, dfa,
                          sources: Optional[Iterable[Hashable]] = None,
                          targets: Optional[Iterable[Hashable]] = None,
                          source_ids: Optional[Iterable[int]] = None
                          ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """:func:`rpq_pairs_compact` on an explicit snapshot view.

    The graph-free entry point the parallel fan-out executor needs: worker
    processes hold a (forked or mmap-reopened) :class:`CompactAdjacency` /
    :class:`DeltaAdjacency` but no live graph object, and each sweeps only
    the ``source_ids`` slot range it owns.  ``source_ids`` (dense integer
    ids, already live) takes precedence over ``sources`` (vertex objects,
    interned here); both ``None`` means every live vertex.
    """
    num_states = dfa.num_states
    slots = snapshot.num_slots
    vertex_ids = snapshot.vertex_ids
    vertex_of = snapshot.vertex_of

    if source_ids is None:
        if sources is None:
            source_ids = snapshot.live_vertex_ids()
        else:
            source_ids = sorted({vertex_ids[v] for v in sources
                                 if v in vertex_ids})
    target_ok, num_targets = _vertex_flag_array(slots, vertex_ids, targets)
    if target_ok is not None and num_targets == 0:
        return frozenset()

    moves = _forward_moves(snapshot, dfa)
    accepting = [False] * num_states
    for state in dfa.accepting:
        accepting[state] = True
    start_state = dfa.start
    start_accepts = accepting[start_state]

    # visited/answered are stamped with the per-source sweep index, so the
    # O(V x states) product table is allocated once, not once per source.
    visited = [-1] * (slots * num_states)
    answered = [-1] * slots
    answers: List[Tuple[Hashable, Hashable]] = []

    # Frontier entries are packed ``vertex_id * num_states + state`` ints:
    # unlike tuples they are not cyclic-GC tracked, so the multi-million
    # entry sweeps do not trigger collector pauses.
    for stamp, source_id in enumerate(source_ids):
        source_vertex = vertex_of[source_id]
        remaining = num_targets
        visited[source_id * num_states + start_state] = stamp
        if start_accepts and (target_ok is None or target_ok[source_id]):
            answered[source_id] = stamp
            answers.append((source_vertex, source_vertex))
            remaining -= 1
        frontier: List[int] = [source_id * num_states + start_state]
        while frontier:
            if target_ok is not None and remaining == 0:
                break  # every wanted target answered for this source
            next_frontier: List[int] = []
            for packed in frontier:
                vertex_id, state = divmod(packed, num_states)
                for indptr, indices, added, removed, base_n, next_state \
                        in moves[state]:
                    if vertex_id < base_n:
                        neighbors = \
                            indices[indptr[vertex_id]:indptr[vertex_id + 1]]
                    else:
                        neighbors = _EMPTY_ROW
                    if removed or added:
                        mask = removed.get(vertex_id)
                        if mask and len(neighbors):
                            neighbors = [x for x in neighbors if x not in mask]
                        grown = added.get(vertex_id)
                        if grown:
                            # len(), not truthiness: the base slice may be a
                            # numpy/memmap view (mmap-backed snapshots), and
                            # ndarray truthiness raises.
                            neighbors = grown if not len(neighbors) \
                                else list(neighbors) + grown
                    for neighbor in neighbors:
                        code = neighbor * num_states + next_state
                        if visited[code] != stamp:
                            visited[code] = stamp
                            if accepting[next_state] \
                                    and answered[neighbor] != stamp \
                                    and (target_ok is None
                                         or target_ok[neighbor]):
                                answered[neighbor] = stamp
                                answers.append((source_vertex,
                                                vertex_of[neighbor]))
                                remaining -= 1
                            next_frontier.append(code)
            frontier = next_frontier
    return frozenset(answers)


def rpq_pairs_backward(graph, dfa,
                       targets: Optional[Iterable[Hashable]] = None,
                       sources: Optional[Iterable[Hashable]] = None
                       ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """:func:`rpq_pairs_compact` evaluated *backward* from the targets.

    One stamped product BFS per target over the **reverse** CSR with the
    DFA's transition relation reversed (:func:`_backward_moves`): a sweep
    seeded at ``(target, q)`` for every accepting ``q`` reaches ``(v,
    start)`` exactly when some v -> target path spells a word the DFA
    accepts, so each settled start-state configuration emits one pair.
    Cost is bounded by the targets' *in*-cones — the profitable direction
    when targets are few or in-fanout is smaller than out-fanout (the
    planner's direction model decides).  ``sources`` restricts emissions,
    and a sweep stops early once every wanted source has answered.
    """
    snapshot = adjacency_snapshot(graph)
    num_states = dfa.num_states
    slots = snapshot.num_slots
    vertex_ids = snapshot.vertex_ids
    vertex_of = snapshot.vertex_of

    if targets is None:
        target_ids: Iterable[int] = snapshot.live_vertex_ids()
    else:
        target_ids = sorted({vertex_ids[v] for v in targets if v in vertex_ids})
    source_ok, num_sources = _vertex_flag_array(slots, vertex_ids, sources)
    if source_ok is not None and num_sources == 0:
        return frozenset()

    moves = _backward_moves(snapshot, dfa)
    start_state = dfa.start
    accepting_states = sorted(dfa.accepting)

    visited = [-1] * (slots * num_states)
    answers: List[Tuple[Hashable, Hashable]] = []

    for stamp, target_id in enumerate(target_ids):
        target_vertex = vertex_of[target_id]
        remaining = num_sources
        frontier: List[int] = []
        for state in accepting_states:
            code = target_id * num_states + state
            if visited[code] != stamp:
                visited[code] = stamp
                frontier.append(code)
                # The DFA is deterministic, so (v, start) settles at most
                # once per sweep — emission needs no dedup array.
                if state == start_state and \
                        (source_ok is None or source_ok[target_id]):
                    answers.append((target_vertex, target_vertex))
                    remaining -= 1
        while frontier:
            if source_ok is not None and remaining == 0:
                break  # every wanted source answered for this target
            next_frontier: List[int] = []
            for packed in frontier:
                vertex_id, state = divmod(packed, num_states)
                for indptr, indices, added, removed, base_n, prev_state \
                        in moves[state]:
                    if vertex_id < base_n:
                        neighbors = \
                            indices[indptr[vertex_id]:indptr[vertex_id + 1]]
                    else:
                        neighbors = _EMPTY_ROW
                    if removed or added:
                        mask = removed.get(vertex_id)
                        if mask and len(neighbors):
                            neighbors = [x for x in neighbors if x not in mask]
                        grown = added.get(vertex_id)
                        if grown:
                            # len(), not truthiness: the base slice may be a
                            # numpy/memmap view (mmap-backed snapshots), and
                            # ndarray truthiness raises.
                            neighbors = grown if not len(neighbors) \
                                else list(neighbors) + grown
                    for neighbor in neighbors:
                        code = neighbor * num_states + prev_state
                        if visited[code] != stamp:
                            visited[code] = stamp
                            if prev_state == start_state and \
                                    (source_ok is None or source_ok[neighbor]):
                                answers.append((vertex_of[neighbor],
                                                target_vertex))
                                remaining -= 1
                            next_frontier.append(code)
            frontier = next_frontier
    return frozenset(answers)


def _mask_bits(mask: int) -> List[int]:
    """Indices of the set bits of a (bignum) bitmask, ascending."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def rpq_pairs_bidirectional(graph, dfa, sources: Iterable[Hashable],
                            targets: Iterable[Hashable]
                            ) -> FrozenSet[Tuple[Hashable, Hashable]]:
    """Meet-in-the-middle product BFS between explicit source/target sets.

    Two label-propagating frontiers share the (vertex, dfa-state) product:
    the forward one carries, per configuration, the bitmask of *sources*
    that reach it over the forward CSR; the backward one the bitmask of
    *targets* reachable from it over the reverse CSR with reversed DFA
    moves.  Each round expands whichever frontier is currently smaller.
    A configuration labeled by both sides is a **meet**: the mask product
    is emitted immediately, so a selective point-to-point query terminates
    as soon as the two half-depth cones touch — neither side ever explores
    the full depth the one-directional kernels would.

    Exactness does not depend on meets alone: masks only grow, so the
    moment either frontier drains that side's labeling is a complete
    closure and the full answer set is read off it directly (forward
    labels at ``(target, accepting)``, backward labels at ``(source,
    start)``).  Total work is therefore bounded by ~2x the *smaller* of
    the two cones — the bidirectional win on queries where one end is
    selective, and the reason the planner gates this kernel on bounded
    source *and* target sets.
    """
    snapshot = adjacency_snapshot(graph)
    num_states = dfa.num_states
    vertex_ids = snapshot.vertex_ids
    vertex_of = snapshot.vertex_of

    source_ids = sorted({vertex_ids[v] for v in sources if v in vertex_ids})
    target_ids = sorted({vertex_ids[v] for v in targets if v in vertex_ids})
    if not source_ids or not target_ids:
        return frozenset()

    fwd_moves = _forward_moves(snapshot, dfa)
    bwd_moves = _backward_moves(snapshot, dfa)
    start_state = dfa.start
    accepting_states = sorted(dfa.accepting)

    fwd_mask = [0] * (snapshot.num_slots * num_states)
    bwd_mask = [0] * (snapshot.num_slots * num_states)
    # Per-round enqueue stamps: a config whose mask grows under several
    # predecessors in one round still expands once next round (it reads
    # its accumulated mask at expansion time).
    fwd_queued = [-1] * (snapshot.num_slots * num_states)
    bwd_queued = [-1] * (snapshot.num_slots * num_states)
    answers: Set[Tuple[Hashable, Hashable]] = set()
    total = len(source_ids) * len(target_ids)
    round_number = 0

    # Per-mask decode caches: dense meets re-emit the same carried masks
    # over and over (every meet in a round shares the frontier's masks), so
    # decoding bit-by-bit inside emit made the meet phase quadratic in the
    # endpoint-set size.  Decoded vertex tuples are memoized per mask value.
    decoded_sources: Dict[int, Tuple[Hashable, ...]] = {}
    decoded_targets: Dict[int, Tuple[Hashable, ...]] = {}

    def emit(source_mask: int, target_mask: int) -> None:
        source_vertices = decoded_sources.get(source_mask)
        if source_vertices is None:
            source_vertices = tuple(vertex_of[source_ids[i]]
                                    for i in _mask_bits(source_mask))
            decoded_sources[source_mask] = source_vertices
        target_vertices = decoded_targets.get(target_mask)
        if target_vertices is None:
            target_vertices = tuple(vertex_of[target_ids[j]]
                                    for j in _mask_bits(target_mask))
            decoded_targets[target_mask] = target_vertices
        for source_vertex in source_vertices:
            for target_vertex in target_vertices:
                answers.add((source_vertex, target_vertex))

    fwd_frontier: List[int] = []
    for i, source_id in enumerate(source_ids):
        code = source_id * num_states + start_state
        fwd_mask[code] |= 1 << i
        fwd_frontier.append(code)
    bwd_frontier: List[int] = []
    for j, target_id in enumerate(target_ids):
        for state in accepting_states:
            code = target_id * num_states + state
            if not bwd_mask[code]:
                bwd_frontier.append(code)
            bwd_mask[code] |= 1 << j
    for code in fwd_frontier:  # seed-on-seed meets (epsilon answers)
        if bwd_mask[code]:
            emit(fwd_mask[code], bwd_mask[code])

    while fwd_frontier and bwd_frontier and len(answers) < total:
        round_number += 1
        if len(fwd_frontier) <= len(bwd_frontier):
            next_frontier = []
            for packed in fwd_frontier:
                carried = fwd_mask[packed]
                vertex_id, state = divmod(packed, num_states)
                for indptr, indices, added, removed, base_n, next_state \
                        in fwd_moves[state]:
                    if vertex_id < base_n:
                        neighbors = \
                            indices[indptr[vertex_id]:indptr[vertex_id + 1]]
                    else:
                        neighbors = _EMPTY_ROW
                    if removed or added:
                        mask = removed.get(vertex_id)
                        if mask and len(neighbors):
                            neighbors = [x for x in neighbors if x not in mask]
                        grown = added.get(vertex_id)
                        if grown:
                            # len(), not truthiness: the base slice may be a
                            # numpy/memmap view (mmap-backed snapshots), and
                            # ndarray truthiness raises.
                            neighbors = grown if not len(neighbors) \
                                else list(neighbors) + grown
                    for neighbor in neighbors:
                        code = neighbor * num_states + next_state
                        known = fwd_mask[code]
                        if carried | known != known:
                            fwd_mask[code] = carried | known
                            meet = bwd_mask[code]
                            if meet:
                                emit(carried & ~known, meet)
                            if fwd_queued[code] != round_number:
                                fwd_queued[code] = round_number
                                next_frontier.append(code)
            fwd_frontier = next_frontier
        else:
            next_frontier = []
            for packed in bwd_frontier:
                carried = bwd_mask[packed]
                vertex_id, state = divmod(packed, num_states)
                for indptr, indices, added, removed, base_n, prev_state \
                        in bwd_moves[state]:
                    if vertex_id < base_n:
                        neighbors = \
                            indices[indptr[vertex_id]:indptr[vertex_id + 1]]
                    else:
                        neighbors = _EMPTY_ROW
                    if removed or added:
                        mask = removed.get(vertex_id)
                        if mask and len(neighbors):
                            neighbors = [x for x in neighbors if x not in mask]
                        grown = added.get(vertex_id)
                        if grown:
                            # len(), not truthiness: the base slice may be a
                            # numpy/memmap view (mmap-backed snapshots), and
                            # ndarray truthiness raises.
                            neighbors = grown if not len(neighbors) \
                                else list(neighbors) + grown
                    for neighbor in neighbors:
                        code = neighbor * num_states + prev_state
                        known = bwd_mask[code]
                        if carried | known != known:
                            bwd_mask[code] = carried | known
                            meet = fwd_mask[code]
                            if meet:
                                emit(meet, carried & ~known)
                            if bwd_queued[code] != round_number:
                                bwd_queued[code] = round_number
                                next_frontier.append(code)
            bwd_frontier = next_frontier

    if len(answers) < total:
        if not fwd_frontier:
            # Forward closure complete: pairs = sources labeled onto any
            # (target, accepting) configuration.
            for j, target_id in enumerate(target_ids):
                base = target_id * num_states
                combined = 0
                for state in accepting_states:
                    combined |= fwd_mask[base + state]
                if combined:
                    emit(combined, 1 << j)
        else:
            # Backward closure complete: pairs read off (source, start).
            for i, source_id in enumerate(source_ids):
                combined = bwd_mask[source_id * num_states + start_state]
                if combined:
                    emit(1 << i, combined)
    return frozenset(answers)


# ----------------------------------------------------------------------
# Single-relational (DiGraph) snapshot + vectorized kernels
# ----------------------------------------------------------------------

class CompactDiGraph:  # reprolint: ignore[numpy-gate] -- numpy-only by contract
    """A numpy snapshot of one :class:`~repro.algorithms.digraph.DiGraph`.

    Holds interning maps plus flat edge arrays (``tails``, ``heads``,
    ``weights``) and forward/reverse/undirected CSR index arrays — the
    inputs the vectorized BFS, component flood-fill and pagerank kernels
    consume, and (as lazily cached plain lists) the integer-indexed Tarjan
    SCC / Brandes betweenness kernels.  Immutable once built; the
    incremental layer produces successors via :meth:`from_arrays`.  Only
    constructed when numpy is importable.
    """

    __slots__ = ("version", "vertex_ids", "vertex_of", "tails", "heads",
                 "weights", "fwd_indptr", "fwd_indices", "rev_indptr",
                 "rev_indices", "und_indptr", "und_indices", "out_weight",
                 "edge_keys", "_scalar_fwd")

    def __init__(self, digraph):
        vertex_of = list(digraph._succ)
        vertex_ids = {v: i for i, v in enumerate(vertex_of)}
        tails: List[int] = []
        heads: List[int] = []
        weights: List[float] = []
        for tail, successors in digraph._succ.items():
            tail_id = vertex_ids[tail]
            for head, weight in successors.items():
                tails.append(tail_id)
                heads.append(vertex_ids[head])
                weights.append(weight)
        self._finish(digraph.version(), vertex_of, vertex_ids,
                     _np.asarray(tails, dtype=_np.int64),
                     _np.asarray(heads, dtype=_np.int64),
                     _np.asarray(weights, dtype=_np.float64))

    @classmethod
    def from_arrays(cls, version: int, vertex_of: List[Hashable],
                    vertex_ids: Dict[Hashable, int], tails, heads,
                    weights) -> "CompactDiGraph":
        """Build a snapshot directly from edge arrays (the delta path)."""
        self = cls.__new__(cls)
        self._finish(version, vertex_of, vertex_ids, tails, heads, weights)
        return self

    def _finish(self, version, vertex_of, vertex_ids, tails, heads, weights):
        self.version = version
        self.vertex_of = vertex_of
        self.vertex_ids = vertex_ids
        self.tails = tails
        self.heads = heads
        self.weights = weights
        n = len(vertex_of)
        self.fwd_indptr, self.fwd_indices = self._csr(tails, heads, n)
        self.rev_indptr, self.rev_indices = self._csr(heads, tails, n)
        both_tails = _np.concatenate([tails, heads])
        both_heads = _np.concatenate([heads, tails])
        self.und_indptr, self.und_indices = self._csr(both_tails, both_heads, n)
        self.out_weight = _np.bincount(tails, weights=weights, minlength=n)
        self.edge_keys = None
        self._scalar_fwd = None

    @classmethod
    def from_csr(cls, version: int, vertex_of: List[Hashable],
                 vertex_ids: Dict[Hashable, int], tails, heads, weights,
                 fwd_indptr, fwd_indices, rev_indptr, rev_indices,
                 und_indptr, und_indices, out_weight) -> "CompactDiGraph":
        """Adopt fully prebuilt arrays (CSR included) without any recompute.

        The snapshot store's reopen path: unlike :meth:`from_arrays`, which
        re-derives the three CSR index families with sorts (touching every
        edge), this constructor trusts the arrays it is handed — under
        ``np.memmap`` nothing is faulted in until a kernel slices it.
        """
        self = cls.__new__(cls)
        self.version = version
        self.vertex_of = vertex_of
        self.vertex_ids = vertex_ids
        self.tails = tails
        self.heads = heads
        self.weights = weights
        self.fwd_indptr, self.fwd_indices = fwd_indptr, fwd_indices
        self.rev_indptr, self.rev_indices = rev_indptr, rev_indices
        self.und_indptr, self.und_indices = und_indptr, und_indices
        self.out_weight = out_weight
        self.edge_keys = None
        self._scalar_fwd = None
        return self

    def _edge_key_array(self):
        """Packed ``(tail << 32) | head`` identity keys, built on first use.

        Only the delta-overlay machinery needs these (one vectorized
        ``isin`` masks removed base edges), so query-only snapshots —
        including mmap-backed reopens — never pay for them."""
        if self.edge_keys is None:
            self.edge_keys = (self.tails << _KEY_SHIFT) | self.heads
        return self.edge_keys

    @staticmethod
    def _csr(sources, targets, n):
        order = _np.argsort(sources, kind="stable")
        indices = targets[order]
        counts = _np.bincount(sources, minlength=n)
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(counts, out=indptr[1:])
        return indptr, indices

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_of)

    def _scalar_forward(self):
        """Forward CSR as plain lists (lazily cached): scalar-loop kernels
        (Tarjan, Brandes) index lists several times faster than numpy
        scalars inside the interpreter."""
        if self._scalar_fwd is None:
            self._scalar_fwd = (self.fwd_indptr.tolist(),
                                self.fwd_indices.tolist())
        return self._scalar_fwd

    # -- kernels ----------------------------------------------------------

    def _frontier_expand(self, indptr, indices, frontier):
        """All CSR targets of the frontier ids, as one flat gather."""
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return None
        offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
        flat = _np.arange(total, dtype=_np.int64) - offsets
        return indices[_np.repeat(starts, counts) + flat]

    def bfs_levels(self, source_id: int, reverse: bool = False):
        """Vectorized level-synchronous BFS: the distance array (-1 = unreached).

        ``reverse=True`` walks edges against their direction (who reaches
        the source) — the closeness kernel's view.  Wide frontiers (more
        than ~1/8 of the vertices) switch from CSR slice-gathering to one
        masked scan of the flat edge arrays — the direction-optimizing
        trick's cheap cousin: when most vertices are active anyway, a
        single O(E) C pass beats assembling gather indices.
        """
        if reverse:
            indptr, indices = self.rev_indptr, self.rev_indices
            scan_from, scan_to = self.heads, self.tails
        else:
            indptr, indices = self.fwd_indptr, self.fwd_indices
            scan_from, scan_to = self.tails, self.heads
        n = self.num_vertices
        distance = _np.full(n, -1, dtype=_np.int64)
        distance[source_id] = 0
        frontier = _np.asarray([source_id], dtype=_np.int64)
        wide = max(n >> 3, 32)
        level = 0
        while frontier.size:
            level += 1
            if frontier.size >= wide:
                neighbors = scan_to[distance[scan_from] == level - 1]
            else:
                neighbors = self._frontier_expand(indptr, indices, frontier)
                if neighbors is None:
                    break
            fresh = neighbors[distance[neighbors] < 0]
            if fresh.size == 0:
                break
            # Scatter the level, then recover the deduplicated frontier with
            # a linear scan — cheaper than sorting via np.unique.
            distance[fresh] = level
            frontier = _np.flatnonzero(distance == level)
        return distance

    def bfs_distances(self, source: Hashable) -> Dict[Hashable, int]:
        """Hop distances from ``source`` — same contract as the dict BFS."""
        distance = self.bfs_levels(self.vertex_ids[source])
        reached = _np.flatnonzero(distance >= 0)
        vertex_of = self.vertex_of
        if reached.size == len(vertex_of):
            return dict(zip(vertex_of, distance.tolist()))
        return {vertex_of[i]: d
                for i, d in zip(reached.tolist(), distance[reached].tolist())}

    def weak_component_labels(self):
        """Component id per vertex via flood fill on the undirected CSR."""
        n = self.num_vertices
        component = _np.full(n, -1, dtype=_np.int64)
        next_id = 0
        for seed in range(n):
            if component[seed] >= 0:
                continue
            component[seed] = next_id
            frontier = _np.asarray([seed], dtype=_np.int64)
            while frontier.size:
                neighbors = self._frontier_expand(
                    self.und_indptr, self.und_indices, frontier)
                if neighbors is None:
                    break
                fresh = neighbors[component[neighbors] < 0]
                if fresh.size == 0:
                    break
                frontier = _np.unique(fresh)
                component[frontier] = next_id
            next_id += 1
        return component

    def strongly_connected_component_labels(self) -> List[int]:
        """Tarjan's SCC over the forward CSR: component id per vertex id.

        Iterative, integer-indexed: index/lowlink/on-stack state lives in
        flat lists and successor expansion is a CSR slice walk — no dict
        hashing, no Edge objects, no per-vertex neighbor sorting (the SCC
        partition is traversal-order independent, so determinism comes free
        from the final canonical sort in
        :func:`repro.algorithms.components.strongly_connected_components`).
        """
        indptr, indices = self._scalar_forward()
        n = self.num_vertices
        index = [-1] * n
        lowlink = [0] * n
        on_stack = bytearray(n)
        component = [-1] * n
        stack: List[int] = []
        work: List[Tuple[int, int]] = []
        counter = 0
        next_component = 0
        for root in range(n):
            if index[root] != -1:
                continue
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = 1
            work.append((root, indptr[root]))
            while work:
                vertex, cursor = work[-1]
                end = indptr[vertex + 1]
                advanced = False
                while cursor < end:
                    successor = indices[cursor]
                    cursor += 1
                    if index[successor] == -1:
                        work[-1] = (vertex, cursor)
                        index[successor] = lowlink[successor] = counter
                        counter += 1
                        stack.append(successor)
                        on_stack[successor] = 1
                        work.append((successor, indptr[successor]))
                        advanced = True
                        break
                    if on_stack[successor] and index[successor] < lowlink[vertex]:
                        lowlink[vertex] = index[successor]
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if lowlink[vertex] < lowlink[parent]:
                        lowlink[parent] = lowlink[vertex]
                if lowlink[vertex] == index[vertex]:
                    while True:
                        member = stack.pop()
                        on_stack[member] = 0
                        component[member] = next_component
                        if member == vertex:
                            break
                    next_component += 1
        return component

    def geodesic_summary(self) -> Tuple[int, int, int]:
        """One BFS per source, reduced on the fly: ``(diameter, total, pairs)``.

        ``diameter`` is the max hop distance over reachable ordered pairs
        (-1 when no vertex reaches another); ``total`` and ``pairs`` are the
        sum and count of distances over reachable ordered pairs excluding
        self — exactly the quantities the dict sweeps in
        :mod:`repro.algorithms.geodesics` accumulate, without materializing
        any per-source distance dict.
        """
        best = -1
        total = 0
        pairs = 0
        for source_id in range(self.num_vertices):
            distance = self.bfs_levels(source_id)
            reached = distance > 0
            count = int(reached.sum())
            if count == 0:
                continue
            reached_distances = distance[reached]
            furthest = int(reached_distances.max())
            if furthest > best:
                best = furthest
            total += int(reached_distances.sum())
            pairs += count
        return best, total, pairs

    def closeness_centrality_scores(self) -> Dict[Hashable, float]:
        """Wasserman–Faust closeness via reverse-CSR BFS per vertex.

        Mirrors the dict implementation's arithmetic exactly (same operation
        order) so the two agree to the last bit on identical graphs.
        """
        n = self.num_vertices
        out: Dict[Hashable, float] = {}
        for vertex_id in range(n):
            distance = self.bfs_levels(vertex_id, reverse=True)
            mask = distance >= 0
            total = int(distance[mask].sum())
            if total > 0 and n > 1:
                reachable = int(mask.sum())
                closeness = (reachable - 1) / total
                closeness *= (reachable - 1) / (n - 1)
            else:
                closeness = 0.0
            out[self.vertex_of[vertex_id]] = closeness
        return out

    def betweenness_centrality_scores(self, normalized: bool = True
                                      ) -> Dict[Hashable, float]:
        """Brandes' betweenness over the forward CSR (unweighted).

        Same algorithm and accumulation formula as the dict implementation;
        only the successor visitation order differs (CSR order instead of
        frozenset order), so scores agree up to float associativity.
        """
        indptr, indices = self._scalar_forward()
        n = self.num_vertices
        betweenness = [0.0] * n
        for source in range(n):
            order: List[int] = []
            predecessors: List[List[int]] = [[] for _ in range(n)]
            sigma = [0.0] * n
            sigma[source] = 1.0
            distance = [-1] * n
            distance[source] = 0
            queue = [source]
            head = 0
            while head < len(queue):
                vertex = queue[head]
                head += 1
                order.append(vertex)
                next_level = distance[vertex] + 1
                for cursor in range(indptr[vertex], indptr[vertex + 1]):
                    successor = indices[cursor]
                    if distance[successor] == -1:
                        distance[successor] = next_level
                        queue.append(successor)
                    if distance[successor] == next_level:
                        sigma[successor] += sigma[vertex]
                        predecessors[successor].append(vertex)
            delta = [0.0] * n
            for w in reversed(order):
                for v in predecessors[w]:
                    delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
                if w != source:
                    betweenness[w] += delta[w]
        if normalized and n > 2:
            scale = 1.0 / ((n - 1) * (n - 2))
            betweenness = [value * scale for value in betweenness]
        return dict(zip(self.vertex_of, betweenness))

    def pagerank(self, damping: float, teleport, max_iterations: int,
                 tolerance: float) -> Optional[Dict[Hashable, float]]:
        """Vectorized power iteration (same update rule as the dict version).

        ``teleport`` maps vertex -> normalized teleport mass.  Returns None
        when the iteration cap is hit so the caller can raise its usual
        :class:`ConvergenceError`.
        """
        n = self.num_vertices
        teleport_vec = _np.asarray(
            [teleport[v] for v in self.vertex_of], dtype=_np.float64)
        out_weight = self.out_weight
        has_out = out_weight > 0.0
        safe_out = _np.where(has_out, out_weight, 1.0)
        tails, heads, weights = self.tails, self.heads, self.weights
        ranks = teleport_vec.copy()
        for _ in range(max_iterations):
            previous = ranks
            coefficient = _np.where(has_out, damping * previous / safe_out, 0.0)
            ranks = _np.bincount(heads, weights=coefficient[tails] * weights,
                                 minlength=n)
            dangling_mass = float(previous[~has_out].sum())
            ranks += (damping * dangling_mass + (1.0 - damping)) * teleport_vec
            if float(_np.abs(ranks - previous).sum()) < n * tolerance:
                return dict(zip(self.vertex_of, ranks.tolist()))
        return None

    def __repr__(self) -> str:
        return "CompactDiGraph<|V|={}, |E|={}, version={}>".format(
            self.num_vertices, len(self.tails), self.version)


class _DiGraphDelta:  # reprolint: ignore[numpy-gate] -- only built around a CompactDiGraph
    """Cache entry pairing a base :class:`CompactDiGraph` with pending deltas.

    Journal replay accumulates removed-edge keys and an added-edge table;
    :meth:`materialize` then produces an up-to-date immutable snapshot with
    vectorized array surgery (one ``isin`` mask + one concatenate + C-speed
    CSR sorts) instead of re-walking the successor dicts in the
    interpreter.  Past the compaction threshold the materialized snapshot
    is promoted to be the new base and the delta tables reset.
    """

    __slots__ = ("base", "snapshot", "vertex_ids", "vertex_of",
                 "removed_keys", "extra", "delta_ops")

    def __init__(self, base: CompactDiGraph):
        self.base = base
        self.snapshot = base
        self.vertex_ids = dict(base.vertex_ids)
        self.vertex_of = list(base.vertex_of)
        self.removed_keys: Set[int] = set()
        self.extra: Dict[Tuple[int, int], float] = {}
        self.delta_ops = 0

    def apply(self, entries: List[Tuple]) -> None:
        """Replay journal entries into the delta tables."""
        vertex_ids = self.vertex_ids
        for entry in entries:
            op = entry[1]
            if op == "+e":
                tail_id = vertex_ids[entry[2]]
                head_id = vertex_ids[entry[3]]
                # Uniform move (add, re-add, or re-weight): mask any base
                # occurrence and carry the live weight in the extra table.
                self.removed_keys.add((tail_id << _KEY_SHIFT) | head_id)
                self.extra[(tail_id, head_id)] = entry[4]
            elif op == "-e":
                tail_id = vertex_ids[entry[2]]
                head_id = vertex_ids[entry[3]]
                self.removed_keys.add((tail_id << _KEY_SHIFT) | head_id)
                self.extra.pop((tail_id, head_id), None)
            elif op == "+v":
                vertex = entry[2]
                if vertex not in vertex_ids:
                    vertex_ids[vertex] = len(self.vertex_of)
                    self.vertex_of.append(vertex)
        self.delta_ops += len(entries)

    def materialize(self, version: int) -> CompactDiGraph:
        """An immutable snapshot of base ⊖ removed ⊕ extra at ``version``."""
        base = self.base
        tails, heads, weights = base.tails, base.heads, base.weights
        if self.removed_keys:
            removed = _np.fromiter(self.removed_keys, dtype=_np.int64,
                                   count=len(self.removed_keys))
            keep = _np.isin(base._edge_key_array(), removed, invert=True)
            tails = tails[keep]
            heads = heads[keep]
            weights = weights[keep]
        if self.extra:
            count = len(self.extra)
            extra_tails = _np.fromiter((t for t, _ in self.extra),
                                       dtype=_np.int64, count=count)
            extra_heads = _np.fromiter((h for _, h in self.extra),
                                       dtype=_np.int64, count=count)
            extra_weights = _np.fromiter(self.extra.values(),
                                         dtype=_np.float64, count=count)
            tails = _np.concatenate([tails, extra_tails])
            heads = _np.concatenate([heads, extra_heads])
            weights = _np.concatenate([weights, extra_weights])
        self.snapshot = CompactDiGraph.from_arrays(
            version, list(self.vertex_of), dict(self.vertex_ids),
            tails, heads, weights)
        return self.snapshot

    def compact(self) -> None:
        """Fold the delta: the materialized snapshot becomes the new base."""
        self.base = self.snapshot
        self.removed_keys.clear()
        self.extra.clear()
        self.delta_ops = 0


def digraph_snapshot(digraph, incremental: bool = True
                     ) -> Optional[CompactDiGraph]:
    """The cached :class:`CompactDiGraph`, or None when numpy is missing.

    Same lifecycle as :func:`adjacency_snapshot`: cached on the instance,
    keyed on ``digraph.version()``; after mutations the journal is replayed
    into array-surgery deltas and a fresh immutable snapshot is materialized
    in vectorized time, falling back to a full dict-walk rebuild only when
    the journal cannot cover the gap (or ``incremental=False``).  Deltas
    fold into a new base past the compaction threshold.
    """
    if _np is None:
        return None
    cache = getattr(digraph, _CACHE_ATTR, None)
    version = digraph.version()
    if isinstance(cache, _DiGraphDelta):
        if cache.snapshot.version == version:
            return cache.snapshot
        if incremental:
            entries = digraph.journal_since(cache.snapshot.version)
            if entries is not None:
                if not entries:
                    # Property-only version bumps: retag, skip the surgery.
                    cache.snapshot.version = version
                    digraph.prune_journal(version)
                    return cache.snapshot
                cache.apply(entries)
                snapshot = cache.materialize(version)
                if compaction_due(cache.delta_ops, len(cache.base.tails)):
                    cache.compact()
                digraph.prune_journal(version)
                return snapshot
    base = CompactDiGraph(digraph)
    setattr(digraph, _CACHE_ATTR, _DiGraphDelta(base))
    digraph.prune_journal(version)
    return base


def digraph_snapshot_if_large(digraph) -> Optional[CompactDiGraph]:
    """:func:`digraph_snapshot`, gated on the DiGraph fast-path threshold.

    The shared guard for every algorithm-module fast path: below
    ``_COMPACT_MIN_ORDER`` vertices (or without numpy) it returns ``None``
    and callers keep their dict implementations, which win at that scale.
    """
    if digraph.order() >= digraph._COMPACT_MIN_ORDER:
        return digraph_snapshot(digraph)
    return None
