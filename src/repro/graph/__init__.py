"""The multi-relational graph substrate (store, generators, io, interop)."""

from repro.graph.graph import MultiRelationalGraph
from repro.graph.compact import (
    CompactAdjacency,
    CompactDiGraph,
    DeltaAdjacency,
    adjacency_snapshot,
    digraph_snapshot,
    rpq_pairs_compact,
    snapshot_state,
)
from repro.graph import generators
from repro.graph import io
from repro.graph import statistics

__all__ = [
    "MultiRelationalGraph",
    "CompactAdjacency", "CompactDiGraph", "DeltaAdjacency",
    "adjacency_snapshot", "digraph_snapshot", "rpq_pairs_compact",
    "snapshot_state",
    "generators", "io", "statistics",
]
