"""The multi-relational graph substrate (store, generators, io, interop)."""

from repro.graph.graph import MultiRelationalGraph
from repro.graph.compact import (
    CompactAdjacency,
    CompactDiGraph,
    DeltaAdjacency,
    adjacency_snapshot,
    digraph_snapshot,
    rpq_pairs_compact,
    rpq_pairs_on_snapshot,
    snapshot_state,
)
from repro.graph.sharding import ShardedSnapshot, sharded_snapshot
from repro.graph import generators
from repro.graph import io
from repro.graph import statistics

__all__ = [
    "MultiRelationalGraph",
    "CompactAdjacency", "CompactDiGraph", "DeltaAdjacency",
    "adjacency_snapshot", "digraph_snapshot", "rpq_pairs_compact",
    "rpq_pairs_on_snapshot", "snapshot_state",
    "ShardedSnapshot", "sharded_snapshot",
    "generators", "io", "statistics",
]
