"""The multi-relational graph substrate (store, generators, io, interop)."""

from repro.graph.graph import MultiRelationalGraph
from repro.graph import generators
from repro.graph import io
from repro.graph import statistics

__all__ = ["MultiRelationalGraph", "generators", "io", "statistics"]
