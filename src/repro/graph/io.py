"""Serialization for multi-relational graphs.

Three formats, chosen for interoperability rather than invention:

* **triple CSV** — one ``tail,label,head`` line per edge; the lingua franca
  of edge lists.  Isolated vertices travel as ``#vertex,<id>`` rows (the
  ``#vertex`` marker is reserved; endpoints of edges need no row).  Lossy
  for properties, and **strings only**: ids that are not ``str`` would come
  back as different values, so :func:`write_triples` refuses them — use
  JSON for typed ids.
* **JSON** — a complete dump: vertices with properties, edges with
  properties, graph name.  Round-trips everything.
* **GraphML subset** — enough of GraphML to exchange labeled digraphs with
  external tools (edge labels as a ``label`` data key).

Every reader validates its input and raises :class:`SerializationError` with
a line/position diagnostic on malformed data.
"""

from __future__ import annotations

import csv
import io
import json
import xml.etree.ElementTree as ElementTree
from typing import Any, Dict, Hashable, IO, Iterable, Union

from repro.errors import SerializationError
from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "write_triples",
    "read_triples",
    "to_triple_text",
    "from_triple_text",
    "write_json",
    "read_json",
    "to_json_dict",
    "from_json_dict",
    "write_graphml",
    "read_graphml",
]


def _opened(file: Union[str, IO], mode: str):
    """Return (stream, should_close) for a path or an already-open stream."""
    if isinstance(file, str):
        return open(file, mode, encoding="utf-8", newline=""), True
    return file, False


# ----------------------------------------------------------------------
# Triple CSV
# ----------------------------------------------------------------------

#: Reserved first field marking an isolated-vertex row in triple CSV.
_VERTEX_MARKER = "#vertex"


def write_triples(graph: MultiRelationalGraph, file: Union[str, IO]) -> None:
    """Write the graph as CSV: ``tail,label,head`` edge rows (sorted,
    stable) plus a ``#vertex,<id>`` row per isolated vertex.

    Without the vertex rows, ``read_triples(to_triple_text(g))`` silently
    dropped every vertex with no incident edge — the round trip now
    preserves the full vertex set.

    Raises
    ------
    SerializationError
        If any vertex id or label is not a ``str``.  CSV has no types:
        an ``int``-vertex graph would round-trip to a *different* graph
        (``1`` back as ``"1"``).  Use the JSON format for typed ids.
    """
    # Validate every id BEFORE opening/writing: raising mid-stream would
    # leave a truncated partial file (possibly clobbering a good one).
    for value in graph.vertices() | graph.labels():
        if not isinstance(value, str):
            raise SerializationError(
                "triple CSV is a string-only format: {!r} would read back "
                "as {!r}; use write_json for non-string vertex ids and "
                "labels".format(value, str(value)))
    stream, should_close = _opened(file, "w")
    try:
        writer = csv.writer(stream)
        for e in sorted(graph.edge_set(), key=repr):
            writer.writerow([e.tail, e.label, e.head])
        for v in sorted(graph.vertices(), key=repr):
            if not graph.out_edges(v) and not graph.in_edges(v):
                writer.writerow([_VERTEX_MARKER, v])
    finally:
        if should_close:
            stream.close()


def read_triples(file: Union[str, IO], name: str = "") -> MultiRelationalGraph:
    """Read a ``tail,label,head`` CSV into a graph (values kept as strings).

    ``#vertex,<id>`` rows (written for isolated vertices) restore bare
    vertices; everything else must be a 3-field edge row.
    """
    stream, should_close = _opened(file, "r")
    try:
        graph = MultiRelationalGraph(name=name)
        for line_number, row in enumerate(csv.reader(stream), start=1):
            if not row:
                continue
            if row[0] == _VERTEX_MARKER and len(row) == 2:
                graph.add_vertex(row[1])
                continue
            if len(row) != 3:
                raise SerializationError(
                    "line {}: expected 3 fields, got {}".format(line_number, len(row)))
            graph.add_edge(row[0], row[1], row[2])
        return graph
    finally:
        if should_close:
            stream.close()


def to_triple_text(graph: MultiRelationalGraph) -> str:
    """The triple CSV as a string."""
    buffer = io.StringIO()
    write_triples(graph, buffer)
    return buffer.getvalue()


def from_triple_text(text: str, name: str = "") -> MultiRelationalGraph:
    """Parse triple CSV text into a graph."""
    return read_triples(io.StringIO(text), name=name)


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------

def to_json_dict(graph: MultiRelationalGraph) -> Dict[str, Any]:
    """A complete JSON-serializable dictionary for ``graph``.

    Vertices and labels must themselves be JSON-representable (strings,
    numbers, booleans); tuples will come back as lists.
    """
    return {
        "format": "repro-multirelational-v1",
        "name": graph.name,
        "vertices": [
            {"id": v, "properties": graph.vertex_properties(v)}
            for v in sorted(graph.vertices(), key=repr)
        ],
        "edges": [
            {
                "tail": e.tail,
                "label": e.label,
                "head": e.head,
                "properties": graph.edge_properties(e.tail, e.label, e.head),
            }
            for e in sorted(graph.edge_set(), key=repr)
        ],
    }


def from_json_dict(data: Dict[str, Any]) -> MultiRelationalGraph:
    """Rebuild a graph from :func:`to_json_dict` output."""
    if not isinstance(data, dict):
        raise SerializationError("expected a JSON object at the top level")
    if data.get("format") != "repro-multirelational-v1":
        raise SerializationError(
            "unknown format marker {!r}".format(data.get("format")))
    graph = MultiRelationalGraph(name=data.get("name", ""))
    for record in data.get("vertices", []):
        if "id" not in record:
            raise SerializationError("vertex record missing 'id': {!r}".format(record))
        graph.add_vertex(record["id"], **record.get("properties", {}))
    for record in data.get("edges", []):
        missing = {"tail", "label", "head"} - set(record)
        if missing:
            raise SerializationError(
                "edge record missing {}: {!r}".format(sorted(missing), record))
        graph.add_edge(record["tail"], record["label"], record["head"],
                       **record.get("properties", {}))
    return graph


def write_json(graph: MultiRelationalGraph, file: Union[str, IO], indent: int = 2) -> None:
    """Dump the complete graph as JSON."""
    stream, should_close = _opened(file, "w")
    try:
        json.dump(to_json_dict(graph), stream, indent=indent, sort_keys=True)
    finally:
        if should_close:
            stream.close()


def read_json(file: Union[str, IO]) -> MultiRelationalGraph:
    """Load a graph dumped by :func:`write_json`."""
    stream, should_close = _opened(file, "r")
    try:
        try:
            data = json.load(stream)
        except json.JSONDecodeError as exc:
            raise SerializationError("invalid JSON: {}".format(exc)) from exc
        return from_json_dict(data)
    finally:
        if should_close:
            stream.close()


# ----------------------------------------------------------------------
# GraphML subset
# ----------------------------------------------------------------------

_GRAPHML_NS = "http://graphml.graphdrawing.org/xmlns"


def write_graphml(graph: MultiRelationalGraph, file: Union[str, IO]) -> None:
    """Write a GraphML document; the edge label goes into a ``label`` data key.

    Vertex ids and labels are stringified (GraphML ids are strings).
    Properties are not serialized in this subset — use JSON for full fidelity.
    """
    root = ElementTree.Element("graphml", xmlns=_GRAPHML_NS)
    key = ElementTree.SubElement(
        root, "key", id="label", attrib={"for": "edge",
                                         "attr.name": "label",
                                         "attr.type": "string"})
    del key  # structure only; no children needed
    graph_el = ElementTree.SubElement(
        root, "graph", id=graph.name or "G", edgedefault="directed")
    for v in sorted(graph.vertices(), key=repr):
        ElementTree.SubElement(graph_el, "node", id=str(v))
    for e in sorted(graph.edge_set(), key=repr):
        edge_el = ElementTree.SubElement(
            graph_el, "edge", source=str(e.tail), target=str(e.head))
        data = ElementTree.SubElement(edge_el, "data", key="label")
        data.text = str(e.label)
    text = ElementTree.tostring(root, encoding="unicode")
    stream, should_close = _opened(file, "w")
    try:
        stream.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        stream.write(text)
    finally:
        if should_close:
            stream.close()


def read_graphml(file: Union[str, IO], name: str = "") -> MultiRelationalGraph:
    """Read the GraphML subset written by :func:`write_graphml`.

    Unlabeled edges get the label ``"edge"`` (GraphML permits plain digraphs).
    """
    stream, should_close = _opened(file, "r")
    try:
        try:
            tree = ElementTree.parse(stream)
        except ElementTree.ParseError as exc:
            raise SerializationError("invalid GraphML XML: {}".format(exc)) from exc
    finally:
        if should_close:
            stream.close()
    root = tree.getroot()
    def qualified(tag: str) -> str:
        return "{{{}}}{}".format(_GRAPHML_NS, tag)
    graph_el = root.find(qualified("graph"))
    if graph_el is None:
        # Tolerate documents written without the namespace.
        graph_el = root.find("graph")
    if graph_el is None:
        raise SerializationError("GraphML document has no <graph> element")
    graph = MultiRelationalGraph(name=name or graph_el.get("id", ""))
    for node_el in list(graph_el.iter(qualified("node"))) + list(graph_el.iter("node")):
        node_id = node_el.get("id")
        if node_id is None:
            raise SerializationError("<node> without an id attribute")
        graph.add_vertex(node_id)
    for edge_el in list(graph_el.iter(qualified("edge"))) + list(graph_el.iter("edge")):
        source = edge_el.get("source")
        target = edge_el.get("target")
        if source is None or target is None:
            raise SerializationError("<edge> missing source/target")
        label = "edge"
        for data_el in list(edge_el.iter(qualified("data"))) + list(edge_el.iter("data")):
            if data_el.get("key") == "label" and data_el.text is not None:
                label = data_el.text
        graph.add_edge(source, label, target)
    return graph
