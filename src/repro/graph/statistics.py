"""Descriptive statistics over multi-relational graphs.

Two consumers: human inspection (:func:`summarize`) and the traversal
engine's cost-based planner, which needs per-label cardinalities and
fan-out estimates to order joins (see :mod:`repro.engine.stats` for the
planner-facing wrapper that adds selectivity math).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Hashable, List, Tuple

from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "degree_distribution",
    "label_distribution",
    "mean_out_degree",
    "mean_out_degree_by_label",
    "fan_out",
    "reciprocity",
    "loop_count",
    "multiplicity_distribution",
    "summarize",
]


def degree_distribution(graph: MultiRelationalGraph,
                        direction: str = "out") -> Dict[int, int]:
    """``degree -> number of vertices with that degree``.

    ``direction`` is one of ``"out"``, ``"in"``, ``"total"``.
    """
    if direction not in ("out", "in", "total"):
        raise ValueError("direction must be 'out', 'in' or 'total'")
    counter: Counter = Counter()
    for v in graph.vertices():
        if direction == "out":
            counter[graph.out_degree(v)] += 1
        elif direction == "in":
            counter[graph.in_degree(v)] += 1
        else:
            counter[graph.degree(v)] += 1
    return dict(counter)


def label_distribution(graph: MultiRelationalGraph) -> Dict[Hashable, float]:
    """``label -> fraction of edges carrying it`` (sums to 1 on non-empty graphs)."""
    total = graph.size()
    if total == 0:
        return {}
    return {
        label: count / float(total)
        for label, count in graph.label_histogram().items()
    }


def mean_out_degree(graph: MultiRelationalGraph) -> float:
    """``|E| / |V|`` — the expansion factor of one unrestricted join step."""
    if graph.order() == 0:
        return 0.0
    return graph.size() / float(graph.order())


def mean_out_degree_by_label(graph: MultiRelationalGraph) -> Dict[Hashable, float]:
    """``label -> mean out-degree counting only that label's edges``.

    This is the planner's per-step fan-out estimate for a labeled traversal.
    """
    if graph.order() == 0:
        return {}
    order = float(graph.order())
    return {
        label: count / order
        for label, count in graph.label_histogram().items()
    }


def fan_out(graph: MultiRelationalGraph, label: Hashable) -> float:
    """Mean number of ``label`` out-edges per vertex *that has any*.

    A sharper per-step growth estimate than :func:`mean_out_degree_by_label`
    because vertices without the relation do not dilute it.
    """
    sources = defaultdict(int)
    for e in graph.match(label=label):
        sources[e.tail] += 1
    if not sources:
        return 0.0
    return sum(sources.values()) / float(len(sources))


def reciprocity(graph: MultiRelationalGraph) -> float:
    """Fraction of edges ``(i, a, j)`` whose reverse ``(j, a, i)`` also exists."""
    edges = graph.edge_set()
    if not edges:
        return 0.0
    reciprocated = sum(1 for e in edges if e.inverted() in edges)
    return reciprocated / float(len(edges))


def loop_count(graph: MultiRelationalGraph) -> int:
    """Number of self-loop edges ``(i, a, i)``."""
    return sum(1 for e in graph.edge_set() if e.is_loop())


def multiplicity_distribution(graph: MultiRelationalGraph) -> Dict[int, int]:
    """``k -> number of ordered vertex pairs linked by exactly k labels``.

    Multi-relational structure in one histogram: a graph with everything at
    ``k == 1`` is effectively single-relational on each pair.
    """
    per_pair: Counter = Counter()
    for e in graph.edge_set():
        per_pair[e.endpoints()] += 1
    histogram: Counter = Counter()
    for count in per_pair.values():
        histogram[count] += 1
    return dict(histogram)


def summarize(graph: MultiRelationalGraph) -> Dict[str, object]:
    """A one-call descriptive summary (used by examples and EXPERIMENTS.md)."""
    return {
        "name": graph.name,
        "vertices": graph.order(),
        "edges": graph.size(),
        "labels": graph.relation_count(),
        "density": graph.density(),
        "mean_out_degree": mean_out_degree(graph),
        "label_histogram": dict(sorted(graph.label_histogram().items(),
                                       key=lambda kv: repr(kv[0]))),
        "reciprocity": reciprocity(graph),
        "loops": loop_count(graph),
    }
