"""NetworkX interoperability.

NetworkX is the reference ecosystem for single-relational graph analysis, so
cross-checking our section IV-C algorithm substrate against it is the main
validation path for :mod:`repro.algorithms` (see tests).  Conversion is kept
in its own module so the rest of the library has **no** NetworkX dependency
— the import happens lazily inside each function.

Mappings:

* ``MultiRelationalGraph -> networkx.MultiDiGraph`` with the edge label as
  the ``key`` and a ``label`` attribute (the natural encoding of a ternary
  relation).
* ``MultiRelationalGraph -> networkx.DiGraph`` by collapsing labels (section
  IV-C method M1) or selecting one relation (method M2).
* Binary edge sets (projection results) -> ``networkx.DiGraph``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Tuple

from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "to_networkx_multidigraph",
    "from_networkx",
    "to_networkx_digraph",
    "binary_edges_to_networkx",
]


def _networkx():
    """Import networkx lazily so the core library stays dependency-free."""
    import networkx
    return networkx


def to_networkx_multidigraph(graph: MultiRelationalGraph):
    """Encode the full ternary structure as a ``networkx.MultiDiGraph``.

    The edge label becomes both the multigraph *key* (so one triple maps to
    one parallel edge) and a ``label`` attribute.  Vertex and edge properties
    ride along as attributes.
    """
    networkx = _networkx()
    out = networkx.MultiDiGraph(name=graph.name)
    for v in graph.vertices():
        out.add_node(v, **graph.vertex_properties(v))
    for e in graph.edge_set():
        out.add_edge(e.tail, e.head, key=e.label, label=e.label,
                     **graph.edge_properties(e.tail, e.label, e.head))
    return out


def from_networkx(nx_graph, label_attribute: str = "label",
                  default_label: Hashable = "edge") -> MultiRelationalGraph:
    """Build a :class:`MultiRelationalGraph` from any NetworkX (di)graph.

    The edge label is taken from ``label_attribute`` if present, else from
    the multigraph key if the input is a multigraph, else ``default_label``.
    Undirected inputs contribute both directions.
    """
    graph = MultiRelationalGraph(name=getattr(nx_graph, "name", "") or "")
    for node, attrs in nx_graph.nodes(data=True):
        graph.add_vertex(node, **attrs)
    if nx_graph.is_multigraph():
        edge_iter = (
            (tail, head, attrs, key)
            for tail, head, key, attrs in nx_graph.edges(keys=True, data=True)
        )
    else:
        edge_iter = (
            (tail, head, attrs, None)
            for tail, head, attrs in nx_graph.edges(data=True)
        )
    for tail, head, attrs, key in edge_iter:
        attrs = dict(attrs)
        label = attrs.pop(label_attribute, None)
        if label is None:
            label = key if key is not None else default_label
        graph.add_edge(tail, label, head, **attrs)
        if not nx_graph.is_directed():
            graph.add_edge(head, label, tail, **attrs)
    return graph


def to_networkx_digraph(graph: MultiRelationalGraph,
                        label: Optional[Hashable] = None):
    """A plain ``networkx.DiGraph`` view of the graph.

    With ``label=None`` this is section IV-C method M1 (ignore labels,
    collapse repeated edges); with a label it is method M2 (extract the
    single relation ``E_label``).
    """
    networkx = _networkx()
    out = networkx.DiGraph(name=graph.name)
    out.add_nodes_from(graph.vertices())
    pairs = graph.collapsed() if label is None else graph.relation(label)
    out.add_edges_from(pairs)
    return out


def binary_edges_to_networkx(pairs: Iterable[Tuple[Hashable, Hashable]],
                             name: str = ""):
    """Lift a binary edge set (e.g. a section IV-C projection) to a DiGraph."""
    networkx = _networkx()
    out = networkx.DiGraph(name=name)
    out.add_edges_from(pairs)
    return out
