"""Synthetic multi-relational graph generators.

The paper evaluates nothing quantitatively, so these generators are the
substitute testbed (see DESIGN.md section 3): seeded, laptop-scale random
graphs whose structure exercises every algebra code path — multiple relation
types, cycles (so Kleene stars are non-trivial), hubs (so joins fan out), and
deterministic families (so tests can assert exact path counts).

All generators take an explicit ``seed`` and are fully deterministic given
it; none of them uses global random state.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence

from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "uniform_random",
    "gnp_random",
    "preferential_attachment",
    "stochastic_blocks",
    "complete_multirelational",
    "cycle_graph",
    "line_graph",
    "star_graph",
    "layered_graph",
]

_DEFAULT_LABELS: Sequence[Hashable] = ("alpha", "beta", "gamma")


def uniform_random(num_vertices: int, num_edges: int,
                   labels: Sequence[Hashable] = _DEFAULT_LABELS,
                   seed: int = 0, allow_loops: bool = True,
                   name: str = "uniform") -> MultiRelationalGraph:
    """A G(n, m)-style multi-relational graph: ``num_edges`` distinct triples.

    Each edge draws tail, head and label uniformly at random; duplicate
    triples are redrawn so the result has exactly ``num_edges`` edges
    (capped by the number of possible triples).
    """
    if num_vertices <= 0:
        raise ValueError("need at least one vertex")
    if not labels:
        raise ValueError("need at least one label")
    rng = random.Random(seed)
    vertex_list = list(range(num_vertices))
    possible = num_vertices * num_vertices * len(labels)
    if not allow_loops:
        possible = num_vertices * (num_vertices - 1) * len(labels)
    target = min(num_edges, possible)
    graph = MultiRelationalGraph(name=name)
    for v in vertex_list:
        graph.add_vertex(v)
    while graph.size() < target:
        tail = rng.choice(vertex_list)
        head = rng.choice(vertex_list)
        if not allow_loops and tail == head:
            continue
        label = rng.choice(list(labels))
        graph.add_edge(tail, label, head)
    return graph


def gnp_random(num_vertices: int, probability: float,
               labels: Sequence[Hashable] = _DEFAULT_LABELS,
               seed: int = 0, name: str = "gnp") -> MultiRelationalGraph:
    """A G(n, p) multi-relational graph: each possible triple appears w.p. ``p``.

    Every ordered vertex pair and label combination is flipped independently,
    so expected size is ``p * n^2 * |labels|``.  Use small ``p``.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    rng = random.Random(seed)
    graph = MultiRelationalGraph(name=name)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for tail in range(num_vertices):
        for head in range(num_vertices):
            for label in labels:
                if rng.random() < probability:
                    graph.add_edge(tail, label, head)
    return graph


def preferential_attachment(num_vertices: int, edges_per_vertex: int = 2,
                            labels: Sequence[Hashable] = _DEFAULT_LABELS,
                            seed: int = 0,
                            name: str = "preferential") -> MultiRelationalGraph:
    """A Barabási–Albert-style growth model with labeled edges.

    Each arriving vertex attaches ``edges_per_vertex`` out-edges to existing
    vertices chosen proportionally to their current degree, each edge taking
    a uniformly random label.  Produces the hub-dominated degree skew that
    stresses join fan-out.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    if edges_per_vertex < 1:
        raise ValueError("need at least one edge per vertex")
    rng = random.Random(seed)
    graph = MultiRelationalGraph(name=name)
    graph.add_vertex(0)
    graph.add_vertex(1)
    graph.add_edge(0, rng.choice(list(labels)), 1)
    # Repeated-vertex pool: each incident edge endpoint adds one entry, so
    # sampling from the pool is sampling proportional to degree.
    pool: List[Hashable] = [0, 1]
    for vertex in range(2, num_vertices):
        graph.add_vertex(vertex)
        targets = set()
        attempts = 0
        while len(targets) < min(edges_per_vertex, vertex) and attempts < 50 * edges_per_vertex:
            targets.add(rng.choice(pool))
            attempts += 1
        for target in targets:
            label = rng.choice(list(labels))
            graph.add_edge(vertex, label, target)
            pool.extend((vertex, target))
    return graph


def stochastic_blocks(block_sizes: Sequence[int], within_probability: float,
                      between_probability: float,
                      labels: Sequence[Hashable] = _DEFAULT_LABELS,
                      seed: int = 0, name: str = "sbm") -> MultiRelationalGraph:
    """A stochastic block model with label choice biased by block membership.

    Vertices are partitioned into blocks; within-block pairs connect with
    ``within_probability`` and between-block pairs with
    ``between_probability``.  The edge label is the block index's label
    (cycled through ``labels``) for within-block edges and a uniformly random
    label otherwise — giving communities a dominant relation type, which is
    what makes labeled traversals selective.
    """
    rng = random.Random(seed)
    graph = MultiRelationalGraph(name=name)
    blocks: List[List[int]] = []
    next_vertex = 0
    for size in block_sizes:
        block = list(range(next_vertex, next_vertex + size))
        blocks.append(block)
        next_vertex += size
    for block in blocks:
        for v in block:
            graph.add_vertex(v, block=blocks.index(block))
    label_list = list(labels)
    for b_index, block in enumerate(blocks):
        block_label = label_list[b_index % len(label_list)]
        for tail in block:
            for head in block:
                if tail != head and rng.random() < within_probability:
                    graph.add_edge(tail, block_label, head)
    for i, block_a in enumerate(blocks):
        for block_b in blocks[i + 1:]:
            for tail in block_a:
                for head in block_b:
                    if rng.random() < between_probability:
                        graph.add_edge(tail, rng.choice(label_list), head)
                    if rng.random() < between_probability:
                        graph.add_edge(head, rng.choice(label_list), tail)
    return graph


def complete_multirelational(num_vertices: int,
                             labels: Sequence[Hashable] = _DEFAULT_LABELS,
                             loops: bool = False,
                             name: str = "complete") -> MultiRelationalGraph:
    """Every ordered pair connected by every label — the densest case."""
    graph = MultiRelationalGraph(name=name)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for tail in range(num_vertices):
        for head in range(num_vertices):
            if tail == head and not loops:
                continue
            for label in labels:
                graph.add_edge(tail, label, head)
    return graph


def cycle_graph(num_vertices: int, labels: Sequence[Hashable] = _DEFAULT_LABELS,
                name: str = "cycle") -> MultiRelationalGraph:
    """A directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` with labels cycled.

    Deterministic: vertex ``k`` connects to ``k+1 mod n`` with label
    ``labels[k % len(labels)]``.  Exact path counts are easy to reason about,
    which test assertions exploit.
    """
    if num_vertices < 1:
        raise ValueError("need at least one vertex")
    graph = MultiRelationalGraph(name=name)
    label_list = list(labels)
    for k in range(num_vertices):
        graph.add_edge(k, label_list[k % len(label_list)], (k + 1) % num_vertices)
    return graph


def line_graph(num_vertices: int, labels: Sequence[Hashable] = _DEFAULT_LABELS,
               name: str = "line") -> MultiRelationalGraph:
    """A directed path ``0 -> 1 -> ... -> n-1`` with labels cycled."""
    if num_vertices < 1:
        raise ValueError("need at least one vertex")
    graph = MultiRelationalGraph(name=name)
    graph.add_vertex(0)
    label_list = list(labels)
    for k in range(num_vertices - 1):
        graph.add_edge(k, label_list[k % len(label_list)], k + 1)
    return graph


def star_graph(num_leaves: int, label: Hashable = "alpha",
               inward: bool = False, name: str = "star") -> MultiRelationalGraph:
    """A hub vertex 0 connected to ``num_leaves`` leaves by one relation.

    ``inward=False`` points edges hub->leaf; ``inward=True`` leaf->hub.
    The extreme fan-out case for join benchmarks.
    """
    graph = MultiRelationalGraph(name=name)
    graph.add_vertex(0)
    for leaf in range(1, num_leaves + 1):
        if inward:
            graph.add_edge(leaf, label, 0)
        else:
            graph.add_edge(0, label, leaf)
    return graph


def layered_graph(layers: int, width: int,
                  labels: Optional[Sequence[Hashable]] = None,
                  seed: int = 0, connection_probability: float = 0.5,
                  name: str = "layered") -> MultiRelationalGraph:
    """A DAG of ``layers`` layers of ``width`` vertices each.

    Edges only go from layer ``k`` to layer ``k+1``, all carrying the layer's
    label (``labels[k]``, default ``"step<k>"``).  Because every path from
    layer 0 to layer L has the same label sequence, the expected result of an
    L-step labeled traversal is analytically checkable — used by the
    traversal tests and the E3 benchmark.
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be positive")
    rng = random.Random(seed)
    if labels is None:
        labels = ["step{}".format(k) for k in range(layers - 1)]
    graph = MultiRelationalGraph(name=name)
    def vertex(layer: int, slot: int) -> str:
        return "L{}v{}".format(layer, slot)
    for layer in range(layers):
        for slot in range(width):
            graph.add_vertex(vertex(layer, slot), layer=layer)
    for layer in range(layers - 1):
        label = labels[layer % len(labels)]
        for tail_slot in range(width):
            connected = False
            for head_slot in range(width):
                if rng.random() < connection_probability:
                    graph.add_edge(vertex(layer, tail_slot), label,
                                   vertex(layer + 1, head_slot))
                    connected = True
            if not connected:
                # Guarantee progress so length-(layers-1) paths always exist.
                graph.add_edge(vertex(layer, tail_slot), label,
                               vertex(layer + 1, rng.randrange(width)))
    return graph
