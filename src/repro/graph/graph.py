"""The multi-relational graph store.

The paper's structure is ``G = (V, E)`` with ``E subseteq (V x Omega x V)``:
a finite vertex set, a finite label set Omega (the relation types), and a set
of ternary edges.  :class:`MultiRelationalGraph` is an in-memory store for
that structure with the indices a traversal engine needs:

* ``out``  — tail vertex  -> edges leaving it,
* ``in``   — head vertex  -> edges entering it,
* ``rel``  — label        -> edges carrying it,
* combined ``(tail, label)`` and ``(label, head)`` indices so the paper's
  set-builder atoms ``[i, a, _]`` / ``[_, a, j]`` resolve without scanning.

Vertices and edges may carry property dictionaries (the "property graph"
model the authors' Gremlin system popularized); properties never affect
algebraic identity — an edge *is* its ``(tail, label, head)`` triple.

The store is mutable; every query returns fresh immutable results
(:class:`frozenset` / :class:`PathSet`), so callers can never corrupt the
indices through a returned value.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.edge import Edge
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.errors import (
    DuplicateVertexError,
    EdgeNotFoundError,
    LabelNotFoundError,
    VertexNotFoundError,
)

__all__ = ["MultiRelationalGraph"]

#: Process-wide mint for per-graph identity tokens.  Two graph instances
#: never share a token, even when their structure and ``version()`` agree —
#: the token is what keeps shared query caches from serving one graph's
#: results for another.
_GRAPH_TOKENS = itertools.count(1)


class MultiRelationalGraph:
    """A directed multi-relational graph ``G = (V, E subseteq V x Omega x V)``.

    Examples
    --------
    >>> g = MultiRelationalGraph()
    >>> g.add_edge("marko", "created", "gremlin")
    Edge('marko', 'created', 'gremlin')
    >>> g.add_edge("marko", "knows", "peter")
    Edge('marko', 'knows', 'peter')
    >>> sorted(g.labels())
    ['created', 'knows']
    >>> len(g.edges(tail="marko"))
    2
    """

    def __init__(self, edges: Iterable = (), name: str = ""):
        """Create a graph, optionally bulk-loading ``(tail, label, head)`` triples."""
        self.name = name
        self._graph_token = next(_GRAPH_TOKENS)
        self._version = 0
        self._vertices: Dict[Hashable, Dict[str, Any]] = {}
        self._edges: Dict[Edge, Dict[str, Any]] = {}
        self._out: Dict[Hashable, Set[Edge]] = defaultdict(set)
        self._in: Dict[Hashable, Set[Edge]] = defaultdict(set)
        self._rel: Dict[Hashable, Set[Edge]] = defaultdict(set)
        self._out_by_label: Dict[Tuple[Hashable, Hashable], Set[Edge]] = defaultdict(set)
        self._in_by_label: Dict[Tuple[Hashable, Hashable], Set[Edge]] = defaultdict(set)
        self._listeners: List = []
        # Pattern -> frozenset cache for match(); valid for one version only,
        # so repeated atom resolution stops allocating fresh frozensets.
        self._match_cache: Dict[Tuple, FrozenSet[Edge]] = {}
        self._match_cache_version = -1
        # Structural mutation journal: ``(version_after, op, *args)`` entries
        # covering versions in ``(_journal_floor, _version]``.  The compact
        # snapshot layer replays it to patch CSR overlays instead of paying
        # an O(V + E) rebuild per mutation; see :mod:`repro.graph.compact`.
        self._journal: List[Tuple] = []
        self._journal_floor = 0
        # Durable-log sinks (see :mod:`repro.storage`): each receives every
        # structural *and* property mutation as ``(version_after, op, *args)``.
        self._wal_sinks: List = []
        for item in edges:
            e = item if isinstance(item, Edge) else Edge(*item)
            self.add_edge(e.tail, e.label, e.head)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Hashable, strict: bool = False, **properties: Any) -> Hashable:
        """Add a vertex; merging properties if it already exists.

        With ``strict=True`` re-adding an existing vertex raises
        :class:`DuplicateVertexError` instead of merging.
        """
        if self._wal_sinks:
            self._wal_precheck(("+v", vertex))
            if properties:
                self._wal_precheck(("pv", vertex, dict(properties)))
        if vertex in self._vertices:
            if strict:
                raise DuplicateVertexError(
                    "vertex {!r} already exists".format(vertex))
            self._vertices[vertex].update(properties)
            self._version += 1
        else:
            self._vertices[vertex] = dict(properties)
            self._version += 1
            self._journal_append(("+v", vertex))
        if properties and self._wal_sinks:
            self._wal_emit(("pv", vertex, dict(properties)))
        return vertex

    def add_edge(self, tail: Hashable, label: Hashable, head: Hashable,
                 **properties: Any) -> Edge:
        """Add the edge ``(tail, label, head)``, creating endpoints as needed.

        Adding an existing edge merges its properties (edge identity is the
        triple itself — ``E`` is a *set*, so there are no parallel duplicates
        of one triple).
        """
        e = Edge(tail, label, head)
        if self._wal_sinks:
            self._wal_precheck(("+e", tail, label, head))
            if properties:
                self._wal_precheck(("pe", tail, label, head, dict(properties)))
        if e in self._edges:
            self._edges[e].update(properties)
            self._version += 1
            if properties and self._wal_sinks:
                self._wal_emit(("pe", tail, label, head, dict(properties)))
            return e
        self.add_vertex(tail)
        self.add_vertex(head)
        self._edges[e] = dict(properties)
        self._out[tail].add(e)
        self._in[head].add(e)
        self._rel[label].add(e)
        self._out_by_label[(tail, label)].add(e)
        self._in_by_label[(label, head)].add(e)
        self._version += 1
        self._journal_append(("+e", tail, label, head))
        if properties and self._wal_sinks:
            self._wal_emit(("pe", tail, label, head, dict(properties)))
        for listener in self._listeners:
            listener("add_edge", e)
        return e

    def add_edges(self, triples: Iterable) -> List[Edge]:
        """Bulk-add ``(tail, label, head)`` triples; returns the edges added."""
        return [
            self.add_edge(*((t.tail, t.label, t.head) if isinstance(t, Edge) else t))
            for t in triples
        ]

    def remove_edge(self, tail: Hashable, label: Hashable, head: Hashable) -> None:
        """Remove one edge.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        e = Edge(tail, label, head)
        if e not in self._edges:
            raise EdgeNotFoundError(e)
        if self._wal_sinks:
            self._wal_precheck(("-e", tail, label, head))
        del self._edges[e]
        # Prune every index symmetrically: an empty bucket left behind is an
        # unbounded memory leak under add/remove churn (and would make the
        # index key counts diverge from the live structure forever).
        for index, key in ((self._out, tail), (self._in, head),
                           (self._rel, label),
                           (self._out_by_label, (tail, label)),
                           (self._in_by_label, (label, head))):
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(e)
                if not bucket:
                    del index[key]
        self._version += 1
        self._journal_append(("-e", tail, label, head))
        for listener in self._listeners:
            listener("remove_edge", e)

    def remove_vertex(self, vertex: Hashable) -> None:
        """Remove a vertex and every edge incident to it.

        Raises
        ------
        VertexNotFoundError
            If the vertex is not present.
        """
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        if self._wal_sinks:
            self._wal_precheck(("-v", vertex))
        for e in list(self._out.get(vertex, ())) + list(self._in.get(vertex, ())):
            if e in self._edges:
                self.remove_edge(e.tail, e.label, e.head)
        self._out.pop(vertex, None)
        self._in.pop(vertex, None)
        del self._vertices[vertex]
        self._version += 1
        self._journal_append(("-v", vertex))

    # ------------------------------------------------------------------
    # Basic inspection
    # ------------------------------------------------------------------

    def vertices(self) -> FrozenSet[Hashable]:
        """The vertex set ``V``."""
        return frozenset(self._vertices)

    def labels(self) -> FrozenSet[Hashable]:
        """The label set ``Omega`` (only labels with at least one edge)."""
        return frozenset(self._rel)

    def edge_set(self) -> FrozenSet[Edge]:
        """The raw edge set ``E`` as a frozenset of :class:`Edge`."""
        return frozenset(self._edges)

    def has_vertex(self, vertex: Hashable) -> bool:
        """True when ``vertex in V``."""
        return vertex in self._vertices

    def has_edge(self, tail: Hashable, label: Hashable, head: Hashable) -> bool:
        """True when ``(tail, label, head) in E``."""
        return Edge(tail, label, head) in self._edges

    def has_label(self, label: Hashable) -> bool:
        """True when some edge carries ``label``."""
        return label in self._rel

    def order(self) -> int:
        """``|V|`` — the number of vertices."""
        return len(self._vertices)

    def size(self) -> int:
        """``|E|`` — the number of edges."""
        return len(self._edges)

    def relation_count(self) -> int:
        """``|Omega|`` — the number of distinct relation types in use."""
        return len(self._rel)


    def version(self) -> int:
        """A counter bumped by every mutation (cache-invalidation token)."""
        return self._version

    def advance_version(self, floor: int) -> None:
        """Raise the version clock to at least ``floor`` (never lowers it).

        Rebuilding a graph from a snapshot restarts the op counter at the
        rebuild's op count, which can fall *below* the version the durable
        log (and any replica tailing it) last saw — new WAL records would
        then reuse already-consumed versions and a version-deduplicating
        consumer would silently drop them.  The storage tier calls this
        after materialization with the durable floor so the clock stays
        monotonic across process restarts.  Jumping the clock is safe:
        versions are an ordering token, gaps are already routine (one
        ``add_edge`` can bump it three times).
        """
        if floor > self._version:
            self._version = floor

    def graph_token(self) -> int:
        """A process-unique identity token minted at graph construction.

        ``version()`` only distinguishes *states of one graph*; two distinct
        graphs can easily agree on it.  Cache keys that may be shared across
        graphs (e.g. :class:`repro.engine.cache.QueryCache`) must embed this
        token as well.
        """
        return self._graph_token

    # ------------------------------------------------------------------
    # Structural mutation journal (compact-snapshot delta source)
    # ------------------------------------------------------------------

    #: Journal entries are dropped wholesale past this length; consumers then
    #: fall back to a full snapshot rebuild, so the cap only bounds memory.
    _JOURNAL_CAP = 65536

    #: Where the compact layer caches snapshots; kept in sync with
    #: ``repro.graph.compact._CACHE_ATTR`` (the differential tests fail
    #: loudly on a mismatch: no overlay would ever form).
    _SNAPSHOT_CACHE_ATTR = "_compact_snapshot_cache"

    def _journal_append(self, entry: Tuple) -> None:
        """Record one structural op, tagged with the version it produced.

        The journal entry lands *before* the WAL sinks see the op: a sink
        may raise (a failed durable append flips the store read-only),
        and the in-memory journal must already agree with the applied
        structure when it does — otherwise the compact snapshot cache
        would stamp the new version onto a view missing this very op and
        serve silently wrong answers ever after.
        """
        if not self._journal and \
                getattr(self, self._SNAPSHOT_CACHE_ATTR, None) is None:
            # No snapshot consumer exists yet: journaling would only retain
            # memory.  Keep the floor pinned so a later consumer knows the
            # gap is uncovered and rebuilds.
            self._journal_floor = self._version
        else:
            self._journal.append((self._version,) + entry)
            if len(self._journal) > self._JOURNAL_CAP:
                del self._journal[:]
                self._journal_floor = self._version
        if self._wal_sinks:
            self._wal_emit(entry)

    def journal_since(self, version: int) -> Optional[List[Tuple]]:
        """Structural ops applied after ``version``, oldest first.

        Each entry is ``(version_after, op, *args)`` with ``op`` one of
        ``"+v"``, ``"-v"``, ``"+e"``, ``"-e"``.  Property-only mutations bump
        :meth:`version` without a journal entry — they never change
        structure.  Returns ``None`` when the journal no longer reaches back
        to ``version`` (capped or pruned), meaning a delta cannot be formed
        and the consumer must rebuild from scratch.
        """
        if version < self._journal_floor:
            return None
        return [entry for entry in self._journal if entry[0] > version]

    def prune_journal(self, version: int) -> None:
        """Drop journal entries at or before ``version`` (already consumed)."""
        if self._journal and self._journal[0][0] <= version:
            self._journal = [entry for entry in self._journal
                             if entry[0] > version]
        if version > self._journal_floor:
            self._journal_floor = version

    def _wal_emit(self, entry: Tuple) -> None:
        """Forward one mutation (structural or property) to every WAL sink."""
        record = (self._version,) + entry
        for sink in self._wal_sinks:
            sink(record)

    def _wal_precheck(self, entry: Tuple) -> None:
        """Let every sink veto a mutation BEFORE any state changes.

        A sink that cannot represent the entry (e.g. a tuple vertex id in
        the JSON-framed log) must get the chance to raise while the graph,
        journal and durable log still agree — raising from the post-apply
        emit would leave the in-memory store permanently ahead of all of
        them.  Called only when sinks are attached; sinks without a
        ``precheck`` attribute accept everything.
        """
        for sink in self._wal_sinks:
            precheck = getattr(sink, "precheck", None)
            if precheck is not None:
                precheck(entry)

    def attach_wal_sink(self, sink) -> None:
        """Register ``sink((version_after, op, *args))`` for every mutation.

        Unlike the bounded structural journal (which exists only to patch
        compact snapshots and drops property ops entirely), sinks see the
        **complete** durable event stream: ``+v``/``-v``/``+e``/``-e`` plus
        ``("pv", vertex, {props})`` and ``("pe", tail, label, head,
        {props})`` property merges.  Used by
        :class:`repro.storage.PersistentGraph` to append the write-ahead
        log.
        """
        self._wal_sinks.append(sink)

    def detach_wal_sink(self, sink) -> None:
        """Remove a previously attached WAL sink (no-op if absent)."""
        if sink in self._wal_sinks:
            self._wal_sinks.remove(sink)

    def subscribe(self, listener) -> None:
        """Register ``listener(event, edge)`` for edge mutations.

        ``event`` is ``"add_edge"`` or ``"remove_edge"``.  Used by
        incrementally-maintained views (:mod:`repro.engine.views`).
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, item) -> bool:
        if isinstance(item, Edge):
            return item in self._edges
        if isinstance(item, tuple) and len(item) == 3:
            return Edge(*item) in self._edges
        return item in self._vertices

    def __iter__(self) -> Iterator[Edge]:
        return iter(sorted(self._edges, key=repr))

    def __repr__(self) -> str:
        label = " {!r}".format(self.name) if self.name else ""
        return "MultiRelationalGraph{}<|V|={}, |E|={}, |Omega|={}>".format(
            label, self.order(), self.size(), self.relation_count())

    def __eq__(self, other) -> bool:
        if not isinstance(other, MultiRelationalGraph):
            return NotImplemented
        return (self.vertices() == other.vertices()
                and self.edge_set() == other.edge_set())

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    def vertex_properties(self, vertex: Hashable) -> Dict[str, Any]:
        """A copy of the property map of ``vertex``."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return dict(self._vertices[vertex])

    def edge_properties(self, tail: Hashable, label: Hashable, head: Hashable) -> Dict[str, Any]:
        """A copy of the property map of one edge."""
        e = Edge(tail, label, head)
        if e not in self._edges:
            raise EdgeNotFoundError(e)
        return dict(self._edges[e])

    def set_vertex_property(self, vertex: Hashable, key: str, value: Any) -> None:
        """Set one property on an existing vertex."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        if self._wal_sinks:
            self._wal_precheck(("pv", vertex, {key: value}))
        self._vertices[vertex][key] = value
        self._version += 1
        if self._wal_sinks:
            self._wal_emit(("pv", vertex, {key: value}))

    def set_edge_property(self, tail: Hashable, label: Hashable, head: Hashable,
                          key: str, value: Any) -> None:
        """Set one property on an existing edge."""
        e = Edge(tail, label, head)
        if e not in self._edges:
            raise EdgeNotFoundError(e)
        if self._wal_sinks:
            self._wal_precheck(("pe", tail, label, head, {key: value}))
        self._edges[e][key] = value
        self._version += 1
        if self._wal_sinks:
            self._wal_emit(("pe", tail, label, head, {key: value}))

    # ------------------------------------------------------------------
    # The paper's set-builder notation (section IV-A)
    # ------------------------------------------------------------------

    def edges(self, tail: Optional[Hashable] = None, label: Optional[Hashable] = None,
              head: Optional[Hashable] = None) -> PathSet:
        """Resolve a set-builder atom to a :class:`PathSet` of length-1 paths.

        ``None`` plays the paper's underscore wildcard:

        * ``g.edges()``                      is ``[_, _, _] = E``,
        * ``g.edges(tail=i)``                is ``[i, _, _]``,
        * ``g.edges(label=a)``               is ``[_, a, _]``,
        * ``g.edges(head=j)``                is ``[_, _, j]``,
        * ``g.edges(tail=i, label=a)``       is ``[i, a, _]``, etc.

        Every result is a set of single-edge paths, ready for ``@`` joins.
        """
        return PathSet.from_edges(self.match(tail, label, head))

    def match(self, tail: Optional[Hashable] = None, label: Optional[Hashable] = None,
              head: Optional[Hashable] = None) -> FrozenSet[Edge]:
        """Like :meth:`edges` but returning raw :class:`Edge` objects.

        Uses the most selective available index; only the fully-wild pattern
        touches the whole edge set.

        Results are cached per pattern and invalidated by :meth:`version`,
        so repeated atom resolution against an unchanged graph returns the
        same frozenset instead of allocating a fresh copy of the bucket on
        every call.
        """
        if self._match_cache_version != self._version:
            self._match_cache.clear()
            self._match_cache_version = self._version
        key = (tail, label, head)
        cached = self._match_cache.get(key)
        if cached is not None:
            return cached
        result = self._match_uncached(tail, label, head)
        self._match_cache[key] = result
        return result

    def _match_uncached(self, tail: Optional[Hashable], label: Optional[Hashable],
                        head: Optional[Hashable]) -> FrozenSet[Edge]:
        """Resolve one pattern through the indices (no caching)."""
        if tail is not None and label is not None:
            candidates = self._out_by_label.get((tail, label), set())
            if head is not None:
                return frozenset(e for e in candidates if e.head == head)
            return frozenset(candidates)
        if label is not None and head is not None:
            return frozenset(self._in_by_label.get((label, head), set()))
        if tail is not None:
            candidates = self._out.get(tail, set())
            if head is not None:
                return frozenset(e for e in candidates if e.head == head)
            return frozenset(candidates)
        if head is not None:
            return frozenset(self._in.get(head, set()))
        if label is not None:
            return frozenset(self._rel.get(label, set()))
        return frozenset(self._edges)

    def all_paths(self) -> PathSet:
        """``E`` lifted to a path set — the starting point of every traversal."""
        return PathSet.from_edges(self._edges)

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------

    def out_edges(self, vertex: Hashable, label: Optional[Hashable] = None) -> FrozenSet[Edge]:
        """Edges leaving ``vertex`` (optionally restricted to one label)."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return self.match(tail=vertex, label=label)

    def in_edges(self, vertex: Hashable, label: Optional[Hashable] = None) -> FrozenSet[Edge]:
        """Edges entering ``vertex`` (optionally restricted to one label)."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return self.match(label=label, head=vertex)

    def successors(self, vertex: Hashable, label: Optional[Hashable] = None) -> FrozenSet[Hashable]:
        """Vertices reachable from ``vertex`` by one edge."""
        return frozenset(e.head for e in self.out_edges(vertex, label))

    def predecessors(self, vertex: Hashable, label: Optional[Hashable] = None) -> FrozenSet[Hashable]:
        """Vertices with one edge into ``vertex``."""
        return frozenset(e.tail for e in self.in_edges(vertex, label))

    def out_degree(self, vertex: Hashable, label: Optional[Hashable] = None) -> int:
        """Number of edges leaving ``vertex``."""
        return len(self.out_edges(vertex, label))

    def in_degree(self, vertex: Hashable, label: Optional[Hashable] = None) -> int:
        """Number of edges entering ``vertex``."""
        return len(self.in_edges(vertex, label))

    def degree(self, vertex: Hashable, label: Optional[Hashable] = None) -> int:
        """Total degree (in + out)."""
        return self.in_degree(vertex, label) + self.out_degree(vertex, label)

    # ------------------------------------------------------------------
    # Relation-level views (section IV-C method M2: extract one relation)
    # ------------------------------------------------------------------

    def relation(self, label: Hashable) -> FrozenSet[Tuple[Hashable, Hashable]]:
        """The binary relation ``E_a = {(gamma-(e), gamma+(e)) | omega(e) = a}``.

        This is the paper's "extract a single edge relation, based on its
        label" construction — section IV-C's second method of applying
        single-relational algorithms to a multi-relational graph.

        Raises
        ------
        LabelNotFoundError
            If no edge carries ``label``.
        """
        if label not in self._rel:
            raise LabelNotFoundError(label)
        return frozenset(e.endpoints() for e in self._rel[label])

    def subgraph_by_labels(self, labels: Iterable[Hashable]) -> "MultiRelationalGraph":
        """The multi-relational subgraph keeping only edges whose label is given.

        Vertices incident to a kept edge are retained (with their
        properties); isolated vertices are dropped.
        """
        wanted = set(labels)
        sub = MultiRelationalGraph(name=self.name)
        for label in wanted:
            for e in self._rel.get(label, ()):
                sub.add_edge(e.tail, e.label, e.head, **self._edges[e])
        for v in sub.vertices():
            for key, value in self._vertices.get(v, {}).items():
                sub.set_vertex_property(v, key, value)
        return sub

    def subgraph_by_vertices(self, vertices: Iterable[Hashable]) -> "MultiRelationalGraph":
        """The induced subgraph on a vertex subset (all labels kept)."""
        wanted = set(vertices)
        sub = MultiRelationalGraph(name=self.name)
        for v in wanted:
            if v in self._vertices:
                sub.add_vertex(v, **self._vertices[v])
        for e, props in self._edges.items():
            if e.tail in wanted and e.head in wanted:
                sub.add_edge(e.tail, e.label, e.head, **props)
        return sub

    def collapsed(self) -> FrozenSet[Tuple[Hashable, Hashable]]:
        """The label-blind binary relation ``{(gamma-(e), gamma+(e)) | e in E}``.

        Section IV-C's *first* method — "simply ignore edge labels and,
        potentially, repeated edges between the same two vertices".  The
        paper warns this destroys semantics; we expose it so experiment E5
        can demonstrate exactly that.
        """
        return frozenset(e.endpoints() for e in self._edges)

    def inverted(self) -> "MultiRelationalGraph":
        """A new graph with every edge reversed (labels preserved)."""
        out = MultiRelationalGraph(name=self.name)
        for v, props in self._vertices.items():
            out.add_vertex(v, **props)
        for e, props in self._edges.items():
            out.add_edge(e.head, e.label, e.tail, **props)
        return out

    def copy(self) -> "MultiRelationalGraph":
        """A deep-enough copy: structure and property maps are duplicated."""
        out = MultiRelationalGraph(name=self.name)
        for v, props in self._vertices.items():
            out.add_vertex(v, **props)
        for e, props in self._edges.items():
            out.add_edge(e.tail, e.label, e.head, **props)
        return out

    def merged(self, other: "MultiRelationalGraph") -> "MultiRelationalGraph":
        """The union graph of two multi-relational graphs."""
        out = self.copy()
        for v in other.vertices():
            out.add_vertex(v, **other.vertex_properties(v))
        for e in other.edge_set():
            out.add_edge(e.tail, e.label, e.head,
                         **other.edge_properties(e.tail, e.label, e.head))
        return out

    # ------------------------------------------------------------------
    # Statistics hooks (consumed by the engine's planner)
    # ------------------------------------------------------------------

    def label_histogram(self) -> Dict[Hashable, int]:
        """``label -> edge count`` — the planner's base cardinality statistic."""
        return {label: len(edges) for label, edges in self._rel.items()}

    def density(self) -> float:
        """``|E| / (|V|^2 * |Omega|)`` — fraction of possible ternary edges present."""
        v, omega = self.order(), self.relation_count()
        if v == 0 or omega == 0:
            return 0.0
        return self.size() / float(v * v * omega)
