"""Vertex-range sharding of compact CSR snapshots.

The ROADMAP's scale-out step: partition one
:class:`~repro.graph.compact.CompactAdjacency` into contiguous **vertex
ranges** so the all-sources sweeps that dominate production traffic can run
per-shard and merge.  The paper's path-algebra traversals are embarrassingly
parallel across disjoint source partitions — each source's product-BFS never
reads another source's state — so the partition is by *ownership*, not by
reachability:

* a shard **owns** the sources in its range ``[lo, hi)`` and answers every
  query row whose source falls there;
* **cross-shard edges stay on the source side**: shard k stores the full
  out-rows of its owned vertices, column ids remaining global, so a scatter
  kernel (pagerank's edge pass) touches only its own rows while a sweep
  kernel seeded at owned sources walks the shared global CSR.

Every shard is a self-contained :class:`CompactAdjacency` over the **global
slot space** (row slices outside the owned range are empty), produced by
vectorized slicing of the global CSR — ``indptr[lo:hi+1] - indptr[lo]``
plus one ``indices`` slice per label, a zero-copy view under numpy/memmap —
so the unchanged compact kernels run on a shard as-is and emit pairs only
for owned sources.  Ranges are balanced by **out-degree**, not vertex
count, so hub-heavy graphs do not starve all workers but one.

The parallel fan-out/merge executor lives in
:mod:`repro.engine.parallel`; per-shard snapshot *files* (so worker
processes mmap only the rows they own) are written and reopened by
:mod:`repro.storage.snapshots`.  See ``docs/sharding.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graph.compact import (
    CompactAdjacency,
    DeltaAdjacency,
    _build_csr,
    fold_adjacency_pairs,
)

try:  # numpy turns the CSR slicing into zero-copy views; optional as ever.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = [
    "ShardedSnapshot",
    "sharded_snapshot",
    "shard_ranges",
    "row_degrees",
    "live_ids_in_range",
    "scatter_rank_mass",
]

#: Attribute under which the sharded snapshot is cached on graph instances
#: (keyed by version + shard count, like the compact snapshot cache).
_SHARD_CACHE_ATTR = "_sharded_snapshot_cache"


def row_degrees(view: Any) -> List[int]:
    """Total out-degree per vertex slot, summed over every label.

    Works on base snapshots and delta overlays alike (removed base edges
    are not subtracted — for range *balancing* an over-estimate is
    harmless, and overlays are densified before any shard is built).
    """
    n = view.num_slots
    degrees = [0] * n
    for label_id in range(view.num_labels):
        indptr, indices, added, removed, base_n = view.out_block(label_id)
        if _np is not None and isinstance(indptr, _np.ndarray):
            counts = (indptr[1:] - indptr[:-1]).tolist()
            for v in range(base_n):
                degrees[v] += counts[v]
        else:
            for v in range(base_n):
                degrees[v] += indptr[v + 1] - indptr[v]
        for v, grown in added.items():
            degrees[v] += len(grown)
    return degrees


def shard_ranges(degrees: List[int], num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` vertex ranges with ~equal out-edge mass.

    Exactly ``min(num_shards, max(n, 1))`` ranges covering ``[0, n)``; every
    range is non-empty while vertices remain.  Cuts fall where the running
    degree total crosses each ``total * k / num_shards`` threshold, so a
    hub-heavy prefix gets fewer vertices rather than all of the work.
    """
    from bisect import bisect_left
    n = len(degrees)
    if num_shards <= 1 or n <= 1:
        return [(0, n)]
    num_shards = min(num_shards, n)
    total = sum(degrees)
    prefix = [0] * (n + 1)
    for v, degree in enumerate(degrees):
        prefix[v + 1] = prefix[v] + degree
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(num_shards):
        if shard == num_shards - 1:
            hi = n
        else:
            threshold = total * (shard + 1) / num_shards
            hi = bisect_left(prefix, threshold, lo + 1, n)
            # Leave at least one vertex for every remaining shard.
            hi = min(hi, n - (num_shards - shard - 1))
        ranges.append((lo, hi))
        lo = hi
    return ranges


def live_ids_in_range(view: Any, lo: int, hi: int) -> Iterable[int]:
    """The live vertex ids inside ``[lo, hi)`` (tombstoned slots skipped)."""
    dead = getattr(view, "dead_vertices", None)
    if not dead:
        return range(lo, hi)
    return [i for i in range(lo, hi) if i not in dead]


def _densify(view: DeltaAdjacency) -> CompactAdjacency:
    """Fold a delta overlay into a fresh dense base snapshot.

    The fold itself (tombstone drop, id re-densify, per-label merge) is
    the shared :func:`~repro.graph.compact.fold_adjacency_pairs` — the
    same one the snapshot store's checkpoint uses — so the two layers can
    never disagree about what an overlay flattens to.
    """
    vertex_of, label_of, per_label, num_edges = fold_adjacency_pairs(view)
    n = len(vertex_of)
    forward = []
    reverse = []
    for pairs in per_label:
        forward.append(_build_csr(n, pairs, len(pairs)))
        reverse.append(_build_csr(n, ((h, t) for t, h in pairs), len(pairs)))
    return CompactAdjacency.from_arrays(view.version, vertex_of, label_of,
                                        forward, reverse, num_edges)


def _slice_rows(indptr: Any, indices: Any, lo: int, hi: int,
                n: int) -> Tuple[Any, Any]:
    """One label's forward CSR restricted to rows ``[lo, hi)``.

    Returns ``(shard_indptr, shard_indices)`` over the full ``n``-slot row
    space: rows outside the range are empty, owned rows keep their global
    column ids.  Under numpy the indices come out as a zero-copy view of
    the global (possibly mmap-backed) array; the list path is one slice
    copy plus one rebased comprehension.
    """
    start = int(indptr[lo])
    stop = int(indptr[hi])
    if _np is not None and isinstance(indptr, _np.ndarray):
        shard_indptr = _np.zeros(n + 1, dtype=_np.int64)
        shard_indptr[lo:hi + 1] = indptr[lo:hi + 1]
        shard_indptr[lo:hi + 1] -= start
        shard_indptr[hi + 1:] = stop - start
        return shard_indptr, indices[start:stop]
    rebased = [p - start for p in indptr[lo:hi + 1]]
    shard_indptr = [0] * lo + rebased + [stop - start] * (n - hi)
    return shard_indptr, indices[start:stop]


def _reverse_of_rows(indptr: Any, indices: Any, lo: int, hi: int,
                     n: int) -> Tuple[Any, Any]:
    """The reverse CSR of the edges owned by rows ``[lo, hi)``.

    Unlike the forward arrays this cannot be sliced (reverse rows are
    ordered by head, which crosses the range), so it is rebuilt from the
    shard's edges — vectorized argsort under numpy, counting sort on lists.
    """
    start = int(indptr[lo])
    stop = int(indptr[hi])
    if _np is not None and isinstance(indptr, _np.ndarray):
        counts = indptr[lo + 1:hi + 1] - indptr[lo:hi]
        tails = _np.repeat(_np.arange(lo, hi, dtype=_np.int64),
                           _np.asarray(counts))
        heads = _np.asarray(indices[start:stop], dtype=_np.int64)
        order = _np.argsort(heads, kind="stable")
        rev_indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(_np.bincount(heads, minlength=n), out=rev_indptr[1:])
        return rev_indptr, tails[order]
    pairs: List[Tuple[int, int]] = []
    for v in range(lo, hi):
        for neighbor in indices[indptr[v]:indptr[v + 1]]:
            pairs.append((int(neighbor), v))
    return _build_csr(n, pairs, len(pairs))


class ShardedSnapshot:
    """One compact snapshot partitioned into vertex-range shards.

    Attributes
    ----------
    version:
        The graph version the partition reflects.
    ranges:
        ``[(lo, hi), ...]`` — contiguous owned vertex-id ranges, one per
        shard, covering ``[0, num_vertices)``.
    shards:
        One self-contained :class:`CompactAdjacency` per range: global slot
        space and interning tables (shared by reference), CSR rows populated
        only for owned vertices.
    degrees:
        Total out-degree per vertex slot (the balancing weights; also the
        pagerank kernels' out-degree vector).
    """

    __slots__ = ("version", "ranges", "shards", "vertex_of", "vertex_ids",
                 "label_of", "label_ids", "num_edges", "degrees", "_starts")

    def __init__(self, version: int, ranges: List[Tuple[int, int]],
                 shards: List[CompactAdjacency], vertex_of: List[Hashable],
                 vertex_ids: Dict[Hashable, int], label_of: List[Hashable],
                 label_ids: Dict[Hashable, int], num_edges: int,
                 degrees: List[int]):
        self.version = version
        self.ranges = ranges
        self.shards = shards
        self.vertex_of = vertex_of
        self.vertex_ids = vertex_ids
        self.label_of = label_of
        self.label_ids = label_ids
        self.num_edges = num_edges
        self.degrees = degrees
        self._starts = [lo for lo, _ in ranges]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_of)

    @classmethod
    def build(cls, view: Any, num_shards: int) -> "ShardedSnapshot":
        """Partition a snapshot view into ``num_shards`` vertex-range shards.

        ``view`` may be a base :class:`CompactAdjacency` or a
        :class:`DeltaAdjacency` overlay — overlays are densified first
        (shards are immutable row slices; a live overlay has no stable rows
        to slice), so a sharded build doubles as a fold point.
        """
        if not isinstance(view, CompactAdjacency):
            view = _densify(view)
        n = view.num_vertices
        degrees = row_degrees(view)
        ranges = shard_ranges(degrees, num_shards)
        shards: List[CompactAdjacency] = []
        for lo, hi in ranges:
            forward = []
            reverse = []
            shard_edges = 0
            for label_id in range(view.num_labels):
                indptr, indices = view.forward[label_id]
                sliced = _slice_rows(indptr, indices, lo, hi, n)
                forward.append(sliced)
                reverse.append(_reverse_of_rows(indptr, indices, lo, hi, n))
                shard_edges += len(sliced[1])
            shards.append(CompactAdjacency(
                view.version, view.vertex_ids, view.vertex_of,
                view.label_ids, view.label_of, forward, reverse,
                shard_edges))
        return cls(view.version, ranges, shards, view.vertex_of,
                   view.vertex_ids, view.label_of, view.label_ids,
                   view.num_edges, degrees)

    @classmethod
    def from_shards(cls, version: int, ranges: List[Tuple[int, int]],
                    shards: List[CompactAdjacency],
                    num_edges: int) -> "ShardedSnapshot":
        """Re-assemble from independently reopened shard snapshots (the
        storage layer's path — shard files share one global vertex table)."""
        first = shards[0]
        return cls(version, ranges, shards, first.vertex_of,
                   first.vertex_ids, first.label_of, first.label_ids,
                   num_edges, row_degrees_of_shards(ranges, shards))

    def shard_for(self, vertex_id: int) -> int:
        """Index of the shard owning ``vertex_id`` (one bisect — this is
        called per row when spilling the merged full snapshot)."""
        from bisect import bisect_right
        if not 0 <= vertex_id < self.num_vertices:
            raise IndexError("vertex id {} outside [0, {})".format(
                vertex_id, self.num_vertices))
        return bisect_right(self._starts, vertex_id) - 1

    def describe(self) -> str:
        """One line for EXPLAIN: shard count and range/edge balance."""
        parts = ", ".join(
            "[{}, {}): {}e".format(lo, hi, shard.num_edges)
            for (lo, hi), shard in zip(self.ranges, self.shards))
        return "{} shard(s) over {} vertices ({})".format(
            self.num_shards, self.num_vertices, parts)

    def __repr__(self) -> str:
        return "ShardedSnapshot<{} shards, |V|={}, |E|={}, version={}>".format(
            self.num_shards, self.num_vertices, self.num_edges, self.version)


def row_degrees_of_shards(ranges: List[Tuple[int, int]],
                          shards: List[CompactAdjacency]) -> List[int]:
    """Global out-degree vector recovered from per-shard row slices."""
    if not shards:
        return []
    degrees = [0] * shards[0].num_vertices
    for (lo, hi), shard in zip(ranges, shards):
        for label_id in range(shard.num_labels):
            indptr, _ = shard.forward[label_id]
            for v in range(lo, hi):
                degrees[v] += indptr[v + 1] - indptr[v]
    return degrees


def sharded_snapshot(graph: Any, num_shards: int) -> ShardedSnapshot:
    """The cached :class:`ShardedSnapshot` for ``graph``, rebuilt when stale.

    Cached on the graph instance keyed by ``(version, num_shards)`` — a
    mutation or a different shard count invalidates it.  Builds on top of
    :func:`repro.graph.compact.adjacency_snapshot`, so pending journal
    deltas are replayed (and folded) before slicing.
    """
    from repro.graph.compact import adjacency_snapshot
    cached = getattr(graph, _SHARD_CACHE_ATTR, None)
    version = graph.version()
    if cached is not None and cached.version == version \
            and cached.num_shards == num_shards:
        return cached
    sharded = ShardedSnapshot.build(adjacency_snapshot(graph), num_shards)
    setattr(graph, _SHARD_CACHE_ATTR, sharded)
    return sharded


def scatter_rank_mass(shard: CompactAdjacency, lo: int, hi: int,
                      coefficients: Any) -> "array.array":
    """One pagerank power-iteration scatter over one shard's owned rows.

    ``coefficients[v - lo]`` is the damped per-edge share of owned vertex
    ``v`` (``damping * rank / out_degree``, zero for dangling vertices);
    the return value is the dense partial rank-mass vector this shard
    contributes, as an ``array('d')`` — a flat C buffer, so shipping a
    partial back through the pool pickles ~6x faster than a float list
    (this crosses the process boundary once per shard per iteration).
    Pure scalar arithmetic in a fixed row order, so the parallel merge
    (shard partials summed in shard order) is bit-for-bit reproducible
    and identical to the serial fallback.
    """
    import array
    n = shard.num_vertices
    partial = [0.0] * n
    for label_id in range(shard.num_labels):
        indptr, indices = shard.forward[label_id]
        for v in range(lo, hi):
            share = coefficients[v - lo]
            if share == 0.0:
                continue
            start = indptr[v]
            end = indptr[v + 1]
            if start == end:
                continue
            for neighbor in indices[start:end]:
                partial[neighbor] += share
    return array.array("d", partial)
