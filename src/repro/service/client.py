"""``ReproClient`` — the retrying HTTP SDK for the serving tier.

Stdlib-only (``http.client``), one connection per request to match the
server's ``Connection: close`` framing.  The client owns the *retry
half* of the service's backoff contract (``docs/robustness.md``):

* **Only idempotent operations are retried** — ``query``, ``explain``,
  ``stats``, ``list_graphs``.  A query re-asked computes the same
  answer; a mutation re-sent may double-apply, so ``mutate`` and
  ``checkpoint`` raise on the *first* failure (including transport
  errors, where the outcome on the server is unknown).
* **Retriable failures** are HTTP 429 (shed / over quota), 503 (store
  degraded), 504 (deadline expired) and transport errors (connection
  refused / reset — e.g. an injected ``http.connection_drop``).  Any
  other error status raises :class:`~repro.errors.RemoteQueryError`
  immediately.
* **Capped exponential backoff with jitter**: attempt *n* sleeps
  ``backoff_base * 2**n`` seconds, capped at ``backoff_cap``, then
  equal-jittered (half fixed, half uniform-random from a seedable RNG
  so tests are deterministic).  A ``Retry-After`` header (or
  ``retry_after`` body field) acts as a *floor*, never a ceiling — the
  server's guidance is the minimum politeness, not a promise the
  resource frees up exactly then.
* After ``max_retries`` failed retries the client gives up with
  :class:`~repro.errors.RetryBudgetExceededError`, whose ``attempts``
  trail records every ``(status_or_exception, slept)`` pair.

``sleeper`` and ``transport`` are injectable for tests: a recording
sleeper asserts the exact backoff sequence without waiting, and a
scripted transport replays canned ``(status, headers, body)`` answers.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple
from urllib.parse import urlencode, urlsplit

from repro.errors import (
    ClientError,
    RemoteQueryError,
    ReplicationCursorGapError,
    ReplicationError,
    RetryBudgetExceededError,
)

__all__ = ["ReproClient", "RemoteFeed", "RETRIABLE_STATUSES"]

#: Statuses the server documents as transient (retriable: true).
RETRIABLE_STATUSES = frozenset({429, 503, 504})

#: ``transport(method, path, body) -> (status, lowercase headers, body)``.
Transport = Callable[[str, str, bytes],
                     Tuple[int, Dict[str, str], bytes]]


class ReproClient:
    """A client for one ``repro serve`` endpoint, with retry policy."""

    def __init__(self, base_url: str,
                 token: Optional[str] = None,
                 max_retries: int = 5,
                 backoff_base: float = 0.1,
                 backoff_cap: float = 5.0,
                 timeout: float = 30.0,
                 jitter_seed: Optional[int] = None,
                 sleeper: Callable[[float], None] = time.sleep,
                 transport: Optional[Transport] = None,
                 keep_alive: bool = False):
        parts = urlsplit(base_url if "//" in base_url
                         else "http://" + base_url)
        if parts.scheme != "http":
            raise ClientError(
                "unsupported URL scheme {!r} (http only)".format(
                    parts.scheme))
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port if parts.port is not None else 80
        self.token = token
        self.max_retries = max(0, max_retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self._rng = random.Random(jitter_seed)
        self._sleep = sleeper
        self._transport: Transport = transport or self._http_transport
        self.keep_alive = keep_alive
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Total retries slept across this client's lifetime.
        self.retries_performed = 0

    # -- transport -----------------------------------------------------

    def _http_transport(self, method: str, path: str,
                        body: bytes) -> Tuple[int, Dict[str, str], bytes]:
        if self.keep_alive:
            return self._keepalive_transport(method, path, body)
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body or None,
                               headers=self._headers("close"))
            response = connection.getresponse()
            data = response.read()
            return (response.status,
                    {key.lower(): value
                     for key, value in response.getheaders()},
                    data)
        finally:
            connection.close()

    def _headers(self, connection_mode: str) -> Dict[str, str]:
        headers = {"Content-Type": "application/json",
                   "Connection": connection_mode}
        if self.token:
            headers["Authorization"] = "Bearer " + self.token
        return headers

    def _keepalive_transport(self, method: str, path: str,
                             body: bytes) -> Tuple[int, Dict[str, str],
                                                   bytes]:
        """One request over a cached connection, reopened on any failure.

        The server caps requests per connection and reaps idle ones, so
        a cached connection going away mid-stream is routine — drop it
        and retry once on a fresh socket before surfacing the error (a
        fresh-socket failure is a real one the retry loop should see).
        """
        for attempt in (0, 1):
            connection = self._connection
            fresh = connection is None
            if fresh:
                connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
                self._connection = connection
            try:
                connection.request(method, path, body=body or None,
                                   headers=self._headers("keep-alive"))
                response = connection.getresponse()
                data = response.read()
                if response.getheader("Connection",
                                      "").lower() == "close":
                    self.close()
                return (response.status,
                        {key.lower(): value
                         for key, value in response.getheaders()},
                        data)
            except (OSError, http.client.HTTPException):
                self.close()
                if fresh or attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Drop the cached keep-alive connection (if any)."""
        connection, self._connection = self._connection, None
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    @staticmethod
    def _decode(data: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(data.decode("utf-8")) if data else {}
        except (ValueError, UnicodeDecodeError):
            return {}
        return payload if isinstance(payload, dict) else {}

    @staticmethod
    def _retry_after(headers: Dict[str, str],
                     payload: Dict[str, Any]) -> Optional[float]:
        value = headers.get("retry-after", payload.get("retry_after"))
        try:
            return float(value) if value is not None else None
        except (TypeError, ValueError):
            return None

    def _backoff(self, attempt: int,
                 retry_after: Optional[float]) -> float:
        delay = min(self.backoff_cap,
                    self.backoff_base * (2.0 ** attempt))
        # Equal jitter: half deterministic, half uniform — spreads a
        # thundering herd without ever halving below base politeness.
        delay = delay / 2.0 + self._rng.random() * (delay / 2.0)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    # -- retry core ----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 idempotent: bool = True,
                 operation: str = "request") -> Dict[str, Any]:
        payload_bytes = json.dumps(body).encode("utf-8") \
            if body is not None else b""
        attempts: List[Tuple[Any, float]] = []
        last_status: Optional[int] = None
        last_error = "no attempt made"
        for attempt in range(self.max_retries + 1):
            retry_after: Optional[float] = None
            failure: Any
            try:
                status, headers, data = self._transport(
                    method, path, payload_bytes)
            except (OSError, http.client.HTTPException) as exc:
                last_status = None
                last_error = "{}: {}".format(type(exc).__name__, exc)
                if not idempotent:
                    # The request may have been applied before the
                    # connection died; retrying could double-apply.
                    raise ClientError(
                        "{} hit a transport error and will not be "
                        "retried (non-idempotent): {}".format(
                            operation, last_error)) from exc
                failure = type(exc).__name__
            else:
                payload = self._decode(data)
                if status < 400:
                    return payload
                last_status = status
                last_error = "HTTP {}: {}".format(
                    status, payload.get("error", "unknown error"))
                if status not in RETRIABLE_STATUSES or not idempotent:
                    raise RemoteQueryError(status, payload, operation)
                retry_after = self._retry_after(headers, payload)
                failure = status
            if attempt >= self.max_retries:
                break
            delay = self._backoff(attempt, retry_after)
            attempts.append((failure, delay))
            self.retries_performed += 1
            self._sleep(delay)
        raise RetryBudgetExceededError(operation, attempts, last_status,
                                       last_error)

    @staticmethod
    def _graph_path(graph: str, action: str) -> str:
        return "/v1/graphs/{}/{}".format(graph, action)

    @staticmethod
    def _query_body(**fields: Any) -> Dict[str, Any]:
        body = {key: value for key, value in fields.items()
                if value is not None}
        for key in ("sources", "targets"):
            if key in body:
                body[key] = sorted(body[key], key=repr)
        return body

    # -- idempotent operations (retried) -------------------------------

    def query(self, graph: str, query: str, *,
              sources: Optional[Sequence[Any]] = None,
              targets: Optional[Sequence[Any]] = None,
              max_length: Optional[int] = None,
              processes: Optional[int] = None,
              deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Full JSON answer for one PathQL query (retried on 429/503/504)."""
        return self._request(
            "POST", self._graph_path(graph, "query"),
            self._query_body(query=query, sources=sources, targets=targets,
                             max_length=max_length, processes=processes,
                             deadline_ms=deadline_ms),
            idempotent=True, operation="query({!r})".format(query))

    def query_pairs(self, graph: str, query: str,
                    **options: Any) -> Set[Tuple[Any, Any]]:
        """Just the answer set, as hashable ``(source, target)`` tuples."""
        payload = self.query(graph, query, **options)
        return {tuple(pair) for pair in payload.get("pairs", [])}

    def query_batch(self, graph: str, queries: Sequence[str], *,
                    sources: Optional[Sequence[Any]] = None,
                    targets: Optional[Sequence[Any]] = None,
                    max_length: Optional[int] = None,
                    processes: Optional[int] = None,
                    deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """One round trip for many queries over one graph snapshot."""
        return self._request(
            "POST", self._graph_path(graph, "query"),
            self._query_body(queries=list(queries), sources=sources,
                             targets=targets, max_length=max_length,
                             processes=processes, deadline_ms=deadline_ms),
            idempotent=True,
            operation="query_batch({} queries)".format(len(queries)))

    def explain(self, graph: str, query: str,
                **options: Any) -> str:
        payload = self._request(
            "POST", self._graph_path(graph, "explain"),
            self._query_body(query=query, **options),
            idempotent=True, operation="explain({!r})".format(query))
        return payload.get("explain", "")

    def stats(self, graph: str) -> Dict[str, Any]:
        return self._request("GET", self._graph_path(graph, "stats"),
                             idempotent=True,
                             operation="stats({!r})".format(graph))

    def list_graphs(self) -> List[str]:
        payload = self._request("GET", "/v1/graphs", idempotent=True,
                                operation="list_graphs")
        return list(payload.get("graphs", []))

    # -- non-idempotent operations (never retried) ---------------------

    def mutate(self, graph: str, *,
               add_edges: Optional[Sequence[Sequence[Any]]] = None,
               remove_edges: Optional[Sequence[Sequence[Any]]] = None,
               deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Apply an edge batch.  **Never retried** — see module docs."""
        body = self._query_body(
            add_edges=[list(edge) for edge in add_edges or []] or None,
            remove_edges=[list(edge) for edge in remove_edges or []] or None,
            deadline_ms=deadline_ms)
        return self._request("POST", self._graph_path(graph, "mutate"),
                             body, idempotent=False,
                             operation="mutate({!r})".format(graph))

    def checkpoint(self, graph: str,
                   deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Fold the WAL into a new generation.  **Never retried.**"""
        body = self._query_body(deadline_ms=deadline_ms)
        return self._request("POST",
                             self._graph_path(graph, "checkpoint"),
                             body or {}, idempotent=False,
                             operation="checkpoint({!r})".format(graph))

    # -- probes (single shot, never raise on status) -------------------

    def health(self) -> bool:
        """One unretried ``GET /healthz``; transport errors propagate."""
        status, _, _ = self._transport("GET", "/healthz", b"")
        return status == 200

    def ready(self) -> Tuple[bool, Dict[str, Any]]:
        """``(ready, detail)`` from one unretried ``GET /readyz``."""
        status, _, data = self._transport("GET", "/readyz", b"")
        return status == 200, self._decode(data)

    # -- replication feed (single shot; the tailer owns the backoff) ---

    def replication_snapshot(self, graph: Optional[str] = None
                             ) -> Tuple[bytes, Dict[str, Any]]:
        """Fetch the primary's snapshot bytes + bootstrap metadata.

        Single-shot on purpose: the replica tailer runs its own paced
        retry loop, and a multi-megabyte body is nothing to re-send
        blindly.  Transport errors propagate as :class:`OSError`.
        """
        path = "/replication/snapshot"
        if graph:
            path += "?" + urlencode({"graph": graph})
        status, headers, data = self._transport("GET", path, b"")
        self._raise_replication_status(status, headers, data,
                                       "replication_snapshot")
        return data, {
            "graph": headers.get("x-repro-graph-name", ""),
            "snapshot": headers.get("x-repro-snapshot", ""),
            "snapshot_version": int(
                headers.get("x-repro-snapshot-version", "0")),
            "cursor": headers.get("x-repro-replication-cursor", ""),
            "version": int(headers.get("x-repro-primary-version", "0")),
            "bytes": int(headers.get("x-repro-bytes", len(data))),
        }

    def replication_wal(self, cursor: str, graph: Optional[str] = None,
                        max_bytes: Optional[int] = None
                        ) -> Tuple[bytes, Dict[str, Any]]:
        """Fetch the CRC-framed WAL run at ``cursor`` (single shot)."""
        params: Dict[str, Any] = {"cursor": cursor}
        if graph:
            params["graph"] = graph
        if max_bytes is not None:
            params["max_bytes"] = max_bytes
        path = "/replication/wal?" + urlencode(params)
        status, headers, data = self._transport("GET", path, b"")
        if status == 410:
            payload = self._decode(data)
            raise ReplicationCursorGapError(
                cursor, str(payload.get("first_retained", "unknown")))
        self._raise_replication_status(status, headers, data,
                                       "replication_wal")
        return data, {
            "graph": headers.get("x-repro-graph-name", ""),
            "cursor": headers.get("x-repro-next-cursor", cursor),
            "at_end": headers.get("x-repro-at-end", "0") == "1",
            "version": int(headers.get("x-repro-primary-version", "0")),
            "bytes": int(headers.get("x-repro-bytes", len(data))),
        }

    def _raise_replication_status(self, status: int,
                                  headers: Dict[str, str], data: bytes,
                                  operation: str) -> None:
        if status < 400:
            return
        payload = self._decode(data)
        if status in RETRIABLE_STATUSES:
            raise ReplicationError(
                "{} failed: HTTP {}: {}".format(
                    operation, status, payload.get("error", "unknown")))
        raise RemoteQueryError(status, payload, operation)

    def __repr__(self) -> str:
        return "ReproClient<http://{}:{}, max_retries={}>".format(
            self.host, self.port, self.max_retries)


class RemoteFeed:
    """The replica-side feed protocol over a :class:`ReproClient`.

    Adapts the client's raw replication fetches to the ``snapshot()`` /
    ``wal(cursor, max_bytes)`` protocol
    :class:`repro.replication.ReplicaGraph` consumes — the same protocol
    :class:`repro.replication.PrimaryFeed` speaks in process, so chaos
    tests exercise the identical replica code path without sockets.
    """

    def __init__(self, client: ReproClient, graph: Optional[str] = None):
        self.client = client
        self.graph = graph

    def snapshot(self) -> Tuple[bytes, Dict[str, Any]]:
        return self.client.replication_snapshot(self.graph)

    def wal(self, cursor_token: str,
            max_bytes: int = 1 << 20) -> Tuple[bytes, Dict[str, Any]]:
        return self.client.replication_wal(cursor_token, graph=self.graph,
                                           max_bytes=max_bytes)
