"""An awaitable facade over :class:`~repro.engine.engine.Engine`.

:class:`AsyncEngine` is the concurrency shell the serving tier runs on.
The blocking kernels stay exactly what they are — the facade moves them
into a **bounded** ``ThreadPoolExecutor`` and adds the machinery a shared
engine needs once multiple callers hit it at once:

* **Bounded concurrency** — at most ``max_concurrency`` queries run at a
  time; the rest wait in a FIFO.  One heavy sweep occupies one slot, so it
  cannot starve point queries out of the pool (they drain through the
  remaining slots while it runs).
* **Per-query deadlines** — a ``deadline`` budget in seconds covers the
  whole trip (queue wait included).  When it expires the awaiting caller
  gets :class:`~repro.errors.DeadlineExceededError` immediately; the
  budget is also visible to the worker side (see below), so abandoned
  work stops at the next cooperative checkpoint instead of burning a
  slot to completion.
* **Cooperative cancellation** — cancelling the awaiting task (or an
  expired deadline) flips the query's :class:`Deadline`; worker code
  checks it *before* the kernel starts and between batch items.  A kernel
  already inside its product BFS finishes that one dispatch — its slot is
  released the moment the thread returns, never earlier, so abandonment
  can neither over-commit the executor nor poison it.
* **Reader/writer exclusivity** — queries share slots; :meth:`mutate`
  (and a registry checkpoint) waits for in-flight queries to drain and
  runs alone.  Every query therefore sees a graph frozen at one version,
  and every cached result is keyed by the version it was computed at.
* **Admission control** — when the FIFO is already ``max_queue_depth``
  deep, new work is shed with a retriable
  :class:`~repro.errors.OverloadedError` instead of queuing into an
  ever-growing tail (the HTTP tier turns it into a 429 + ``Retry-After``).
* **Result-cache fast path** — when the engine carries a
  :class:`~repro.engine.cache.QueryCache`, a repeated ``pairs`` query is
  answered straight from the event loop (O(lookup), no executor round
  trip, no slot).  Invalidation is by mutation version, which the cache
  key embeds.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.concurrency import ordered_lock, release_resource, track_resource
from repro.engine.engine import Engine
from repro.errors import DeadlineExceededError, OverloadedError, ServiceError
from repro.regex.ast import RegexExpr

__all__ = ["AsyncEngine", "Deadline"]

#: Default worker-thread count for a standalone AsyncEngine.
DEFAULT_WORKERS = 4

#: Compiled-query LRU capacity (PathQL text -> normalized AST).
_COMPILE_CACHE_CAP = 256


class Deadline:
    """A monotonic per-query budget doubling as a cooperative cancel flag.

    ``seconds=None`` means unbounded (never expires, still cancellable).
    Worker threads call :meth:`check` at cooperative checkpoints; the
    event loop calls :meth:`cancel` when the awaiting side gives up, so
    in-flight work notices without any cross-thread signalling beyond one
    boolean read.
    """

    def __init__(self, seconds: Optional[float] = None):
        if seconds is not None and seconds <= 0:
            raise ServiceError(
                "deadline must be positive, got {!r}".format(seconds))
        self.seconds = seconds
        self._expires = None if seconds is None \
            else time.monotonic() + seconds
        self._cancelled = False

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative), or ``None`` when unbounded."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def expired(self) -> bool:
        return self._expires is not None \
            and time.monotonic() >= self._expires

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Flip the cooperative flag; worker checkpoints raise from now on."""
        self._cancelled = True

    def check(self, phase: str = "running") -> None:
        """Raise :class:`DeadlineExceededError` when cancelled or expired."""
        if self._cancelled:
            raise DeadlineExceededError(self.seconds, phase="cancelled")
        if self.expired():
            raise DeadlineExceededError(self.seconds, phase=phase)

    def __repr__(self) -> str:
        return "Deadline<{}, {}>".format(
            "unbounded" if self.seconds is None
            else "{:.3f}s".format(self.seconds),
            "cancelled" if self._cancelled else "live")


class AsyncEngine:
    """The awaitable engine facade (see module docstring).

    Parameters
    ----------
    engine:
        The blocking :class:`Engine` to front.  Give it a
        :class:`~repro.engine.cache.QueryCache` to unlock the loop-side
        result fast path.
    max_workers:
        Executor thread count (ignored when ``executor`` is passed).
    max_concurrency:
        Query slots; defaults to the worker count.  Keeping it at or
        below ``max_workers`` means an admitted query never waits for a
        thread.
    max_queue_depth:
        Waiting-query bound for admission control; ``None`` disables
        shedding (unbounded FIFO).
    default_deadline:
        Budget applied when a call passes ``deadline=None``.
    executor:
        An externally owned ``ThreadPoolExecutor`` to share (the registry
        pools one across graphs); the facade then never shuts it down.
    """

    def __init__(self, engine: Engine,
                 max_workers: int = DEFAULT_WORKERS,
                 max_concurrency: Optional[int] = None,
                 max_queue_depth: Optional[int] = None,
                 default_deadline: Optional[float] = None,
                 executor: Optional[ThreadPoolExecutor] = None):
        self.engine = engine
        self._owns_executor = executor is None
        self._executor = executor if executor is not None else \
            ThreadPoolExecutor(max_workers=max_workers,
                               thread_name_prefix="repro-query")
        self._leak_token = track_resource(
            "query-executor", repr(engine.graph)) \
            if self._owns_executor else None
        self.max_concurrency = max(1, max_concurrency
                                   if max_concurrency is not None
                                   else max_workers)
        self.max_queue_depth = max_queue_depth
        self.default_deadline = default_deadline
        # Reader/writer slot state; every transition happens in the event
        # loop thread, so plain counters + a FIFO of futures suffice (no
        # locks, no Condition).  FIFO order is the fairness story: a
        # waiting writer blocks later readers, so it cannot starve.
        self._active_readers = 0
        self._writer_active = False
        self._waiters: Deque[Tuple[str, "asyncio.Future"]] = deque()
        self._compiled: "OrderedDict[str, RegexExpr]" = OrderedDict()
        self._closed = False
        # Guards only the close() idempotency flip: slot state stays
        # loop-confined, but teardown can race between the event loop and
        # the registry's synchronous eviction/close paths.
        self._state_lock = ordered_lock("service.async_engine")
        self.counters: Dict[str, int] = {
            "submitted": 0, "completed": 0, "failed": 0,
            "deadline_exceeded": 0, "shed": 0, "cache_fast_hits": 0,
            "mutations": 0,
        }

    # -- compilation (loop side, cached) -------------------------------

    def _compile(self, query: Union[str, RegexExpr]) -> RegexExpr:
        """Parse+normalize via a small LRU so the loop never re-parses a
        hot query string (ASTs pass straight through)."""
        if not isinstance(query, str):
            return query
        expression = self._compiled.get(query)
        if expression is None:
            expression = self.engine.compile(query)
            self._compiled[query] = expression
            if len(self._compiled) > _COMPILE_CACHE_CAP:
                self._compiled.popitem(last=False)
        else:
            self._compiled.move_to_end(query)
        return expression

    # -- slot management (loop side) -----------------------------------

    def _grantable(self, kind: str) -> bool:
        if self._writer_active:
            return False
        if kind == "write":
            return self._active_readers == 0
        return self._active_readers < self.max_concurrency

    def _grant(self, kind: str) -> None:
        if kind == "write":
            self._writer_active = True
        else:
            self._active_readers += 1

    def _release(self, kind: str) -> None:
        if kind == "write":
            self._writer_active = False
        else:
            self._active_readers -= 1
        self._wake()

    def _wake(self) -> None:
        """Grant queued slots head-first; a blocked head blocks the queue
        (FIFO fairness — this is what gives writers priority over later
        readers without starving either side)."""
        while self._waiters:
            kind, waiter = self._waiters[0]
            if waiter.done():
                self._waiters.popleft()
                continue
            if not self._grantable(kind):
                break
            self._grant(kind)
            waiter.set_result(None)
            self._waiters.popleft()

    async def _acquire(self, kind: str, deadline: Deadline) -> None:
        self._check_open()
        deadline.check(phase="queued")
        if not self._waiters and self._grantable(kind):
            self._grant(kind)
            return
        if self.max_queue_depth is not None \
                and len(self._waiters) >= self.max_queue_depth:
            self.counters["shed"] += 1
            raise OverloadedError(
                "admission queue is full ({} waiting, {} running); "
                "retry with backoff".format(
                    len(self._waiters), self._active_readers),
                retry_after=1.0)
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append((kind, waiter))
        try:
            remaining = deadline.remaining()
            if remaining is None:
                await waiter
            else:
                await asyncio.wait_for(waiter, remaining)
        except asyncio.TimeoutError:
            self._withdraw(kind, waiter)
            raise DeadlineExceededError(deadline.seconds, phase="queued") \
                from None
        except asyncio.CancelledError:
            self._withdraw(kind, waiter)
            raise

    def _withdraw(self, kind: str, waiter: "asyncio.Future") -> None:
        """Back out of the queue; if the slot raced in, give it back."""
        if waiter.done() and not waiter.cancelled():
            self._release(kind)
        else:
            waiter.cancel()
            self._wake()

    # -- execution -----------------------------------------------------

    def _deadline(self, deadline: Optional[float]) -> Deadline:
        if isinstance(deadline, Deadline):
            return deadline
        return Deadline(self.default_deadline if deadline is None
                        else deadline)

    async def _run(self, kind: str, work: Callable[[Deadline], Any],
                   deadline: Deadline) -> Any:
        """Admit, dispatch to the executor, await under the deadline.

        The slot is released when the worker *thread* finishes — not when
        the awaiting side gives up — so an abandoned kernel can never
        over-commit the pool; and the executor future is shielded, so a
        ``wait_for`` timeout abandons it instead of leaving a half-run
        kernel believing it was cancelled.
        """
        await self._acquire(kind, deadline)
        self.counters["submitted"] += 1
        loop = asyncio.get_running_loop()

        def guarded() -> Any:
            # Cooperative checkpoint: work that sat queued in the
            # executor past its budget (or was cancelled while queued)
            # never starts its kernel.
            deadline.check(phase="queued")
            return work(deadline)

        future = loop.run_in_executor(self._executor, guarded)

        def on_done(f: "asyncio.Future") -> None:
            self._release(kind)
            if f.cancelled():
                return
            if f.exception() is not None:
                self.counters["failed"] += 1
            else:
                self.counters["completed"] += 1

        future.add_done_callback(on_done)
        try:
            remaining = deadline.remaining()
            if remaining is None:
                return await asyncio.shield(future)
            return await asyncio.wait_for(asyncio.shield(future), remaining)
        except asyncio.TimeoutError:
            deadline.cancel()
            self.counters["deadline_exceeded"] += 1
            raise DeadlineExceededError(deadline.seconds) from None
        except DeadlineExceededError:
            self.counters["deadline_exceeded"] += 1
            raise
        except asyncio.CancelledError:
            deadline.cancel()
            raise

    # -- public query surface ------------------------------------------

    async def pairs(self, query: Union[str, RegexExpr],
                    sources: Optional[Iterable] = None,
                    targets: Optional[Iterable] = None,
                    max_length: Optional[int] = None,
                    processes: Optional[int] = None,
                    deadline: Optional[float] = None) -> frozenset:
        """Awaitable :meth:`Engine.pairs` with deadline + fast cache path."""
        budget = self._deadline(deadline)
        expression = self._compile(query)
        cached = self.engine.cached_pairs(expression, sources=sources,
                                          targets=targets,
                                          max_length=max_length)
        if cached is not None:
            self.counters["cache_fast_hits"] += 1
            return cached
        return await self._run(
            "read",
            lambda d: self.engine.pairs(expression, sources=sources,
                                        targets=targets,
                                        max_length=max_length,
                                        processes=processes),
            budget)

    async def pairs_batch(self, queries: Iterable[Union[str, RegexExpr]],
                          sources: Optional[Iterable] = None,
                          targets: Optional[Iterable] = None,
                          max_length: Optional[int] = None,
                          processes: Optional[int] = None,
                          deadline: Optional[float] = None) -> List[frozenset]:
        """Awaitable :meth:`Engine.pairs_batch`.

        Without a deadline the whole batch goes down as one engine call
        (one pool fan-out).  Under a deadline the batch runs query by
        query with a cooperative check between items, so an expired
        budget stops after the current item instead of finishing the
        whole batch in a doomed thread.
        """
        budget = self._deadline(deadline)
        expressions = [self._compile(query) for query in queries]
        if budget.seconds is None:
            work = lambda d: self.engine.pairs_batch(
                expressions, sources=sources, targets=targets,
                max_length=max_length, processes=processes)
        else:
            def work(d: Deadline) -> List[frozenset]:
                out = []
                for expression in expressions:
                    d.check()
                    out.append(self.engine.pairs(
                        expression, sources=sources, targets=targets,
                        max_length=max_length, processes=processes))
                return out
        return await self._run("read", work, budget)

    async def query(self, query: Union[str, RegexExpr],
                    strategy: str = "materialized",
                    max_length: Optional[int] = None,
                    limit: Optional[int] = None,
                    processes: Optional[int] = None,
                    deadline: Optional[float] = None) -> Any:
        """Awaitable :meth:`Engine.query` (path-materializing strategies)."""
        budget = self._deadline(deadline)
        expression = self._compile(query)
        return await self._run(
            "read",
            lambda d: self.engine.query(expression, strategy=strategy,
                                        max_length=max_length, limit=limit,
                                        processes=processes),
            budget)

    async def explain(self, query: Union[str, RegexExpr],
                      max_length: Optional[int] = None,
                      sources: Optional[frozenset] = None,
                      targets: Optional[frozenset] = None,
                      deadline: Optional[float] = None) -> str:
        """Awaitable :meth:`Engine.explain`."""
        budget = self._deadline(deadline)
        expression = self._compile(query)
        return await self._run(
            "read",
            lambda d: self.engine.explain(expression, max_length=max_length,
                                          sources=sources, targets=targets),
            budget)

    async def mutate(self, mutator: Callable[..., Any],
                     deadline: Optional[float] = None) -> Any:
        """Run ``mutator(graph)`` **exclusively**: queries drain first.

        Readers admitted before the mutation see the old version; readers
        arriving behind it in the FIFO see the new one — every result is
        consistent with exactly one version, and the version-keyed caches
        invalidate themselves.
        """
        budget = self._deadline(deadline)
        result = await self._run(
            "write", lambda d: mutator(self.engine.graph), budget)
        self.counters["mutations"] += 1
        return result

    # -- lifecycle / introspection -------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("AsyncEngine is closed")

    async def drain(self, deadline: Optional[float] = None) -> None:
        """Wait until no queries are in flight (a writer slot round trip)."""
        budget = self._deadline(deadline)
        await self._acquire("write", budget)
        self._release("write")

    async def aclose(self, deadline: Optional[float] = 30.0) -> None:
        """Drain in-flight queries, then release every resource.

        New work is refused immediately; queries already holding a slot
        get up to ``deadline`` seconds to finish before the executor is
        shut down without waiting.
        """
        if self._closed:
            return
        try:
            await self.drain(deadline=deadline)
        except DeadlineExceededError:
            pass
        self.close(wait=False)

    def close(self, wait: bool = True) -> None:
        """Synchronous teardown (idempotent): executor + engine pool.

        The closed flip happens under ``_state_lock`` so exactly one of
        two racing closers (the event loop's ``aclose`` vs the registry's
        synchronous eviction) runs the teardown body; everything after
        the flip is executed by that single winner.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for _, waiter in list(self._waiters):
            if not waiter.done():
                waiter.cancel()
        self._waiters.clear()
        if self._owns_executor:
            self._executor.shutdown(wait=wait)
        self.engine.close()
        release_resource(self._leak_token)

    @property
    def idle(self) -> bool:
        """True when no query is active or queued on this engine.

        The registry's eviction pass consults this so a handle is never
        torn down underneath an in-flight query: refcounts cover callers
        that went through :meth:`GraphRegistry.acquire`, while ``idle``
        covers work already admitted into the engine itself.
        """
        return (self._active_readers == 0 and not self._writer_active
                and not self._waiters)

    def stats(self) -> Dict[str, Any]:
        """Concurrency + cache counters, JSON-ready."""
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue_depth": self.max_queue_depth,
            "active": self._active_readers,
            "writer_active": self._writer_active,
            "waiting": len(self._waiters),
            "counters": dict(self.counters),
            "engine_caches": self.engine.cache_stats(),
            "parallel": self.engine.parallel_stats(),
        }

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return "AsyncEngine<{!r}, {} slot(s), {} active, {} waiting{}>".format(
            self.engine.graph, self.max_concurrency, self._active_readers,
            len(self._waiters), ", closed" if self._closed else "")
