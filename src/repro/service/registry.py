"""The multi-tenant graph registry: named stores, refcounts, quotas.

A registry roots a directory of :class:`~repro.storage.PersistentGraph`
stores — one subdirectory per graph name::

    root/
      social/   manifest.json, snapshot-*.rcsr, wal-*.log
      citations/ ...

and hands out ref-counted :class:`GraphHandle`\\ s, each binding the store
to one :class:`~repro.engine.engine.Engine` (result-cached) wrapped in one
:class:`~repro.service.async_engine.AsyncEngine`.  All handles share a
single worker executor and a single version+token-keyed
:class:`~repro.engine.cache.QueryCache`, so N graphs cost one thread pool
and one cache budget, not N.

Tenancy
-------
Callers are **tenants** (the HTTP tier maps auth tokens to tenant names).
:meth:`GraphRegistry.admit` is the per-tenant admission gate: each tenant
gets at most ``quota`` queries in flight at once; beyond it the request is
shed with a retriable :class:`~repro.errors.QuotaExceededError` (429) —
one tenant's burst cannot monopolize the shared slots.  Global queue-depth
shedding lives in the :class:`AsyncEngine` underneath; both errors carry
``retry_after`` backoff guidance.

Lifecycle
---------
``acquire`` opens a store on first use (``materialize=True`` — the serving
tier needs the mutable dict graph) and bumps the handle's refcount;
``release`` drops it.  Handles at refcount 0 stay warm for the next caller
until ``max_open`` forces the least-recently-used idle one closed, or
:meth:`GraphRegistry.close` tears everything down (engine pools drained
gracefully, WALs flushed).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.concurrency import (
    ordered_rlock,
    release_resource,
    track_resource,
)
from repro.engine.cache import QueryCache
from repro.engine.engine import Engine
from repro.errors import (
    QuotaExceededError,
    ServiceError,
    StorageError,
    UnknownGraphError,
)
from repro.service.async_engine import AsyncEngine
from repro.storage.persistent import MANIFEST_NAME, PersistentGraph

__all__ = ["GraphRegistry", "GraphHandle"]

#: Per-tenant concurrent-query quota applied when none is configured.
DEFAULT_TENANT_QUOTA = 8


class GraphHandle:
    """One open graph: store + engine + async facade, ref-counted."""

    def __init__(self, name: str, store: PersistentGraph,
                 engine: Engine, async_engine: AsyncEngine):
        self.name = name
        self.store = store
        self.engine = engine
        self.async_engine = async_engine
        self.refcount = 0
        self._sequence = 0  # registry LRU clock value, maintained there

    async def checkpoint(self, deadline: Optional[float] = None) -> Dict:
        """Checkpoint the store with queries drained (writer slot)."""
        return await self.async_engine.mutate(
            lambda graph: self.store.checkpoint(), deadline=deadline)

    def info(self) -> Dict[str, Any]:
        """Store manifest/WAL state + service counters, JSON-ready."""
        info = self.store.info()
        info["refcount"] = self.refcount
        info["service"] = self.async_engine.stats()
        return info

    def __repr__(self) -> str:
        return "GraphHandle<{!r}, refcount={}>".format(self.name,
                                                       self.refcount)


class _Admission:
    """The released-exactly-once token :meth:`GraphRegistry.admit` returns."""

    def __init__(self, registry: "GraphRegistry", tenant: str):
        self._registry = registry
        self._tenant = tenant
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._registry._release_tenant(self._tenant)

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class GraphRegistry:
    """Open graphs by name with shared executor, cache, and quotas."""

    def __init__(self, root: str,
                 max_workers: int = 4,
                 max_concurrency: Optional[int] = None,
                 max_queue_depth: Optional[int] = 32,
                 default_deadline: Optional[float] = None,
                 cache_capacity: int = 256,
                 max_open: int = 16,
                 quotas: Optional[Dict[str, int]] = None,
                 default_quota: int = DEFAULT_TENANT_QUOTA,
                 replicate: bool = False):
        self.root = os.path.abspath(root)
        if not os.path.isdir(self.root):
            raise StorageError(
                "registry root {} is not a directory".format(self.root))
        self.max_workers = max_workers
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.default_deadline = default_deadline
        self.max_open = max(1, max_open)
        self.default_quota = default_quota
        #: Open every store with a shippable segment log, so this server
        #: can serve replica bootstrap/tail reads (``--replicate``).
        self.replicate = replicate
        self._quotas = dict(quotas or {})
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-registry")
        self._leak_token = track_resource("registry-executor", self.root)
        # capacity <= 0 disables result caching entirely (repro serve
        # --cache 0): every query then recomputes at the current version.
        self._cache: Optional[QueryCache] = \
            QueryCache(capacity=cache_capacity) if cache_capacity > 0 \
            else None
        self._handles: Dict[str, GraphHandle] = {}
        self._sequence = 0
        self._tenant_inflight: Dict[str, int] = {}
        self._closed = False
        # acquire/release may be driven from the event loop and from
        # synchronous admin code; one lock keeps the handle table sane.
        # Witness-ordered at the top of the hierarchy: eviction closes
        # stores (storage.store) while this is held.
        self._lock = ordered_rlock("service.registry")

    # -- naming --------------------------------------------------------

    def _directory(self, name: str) -> str:
        # Graph names come off the wire: refuse anything that could
        # escape the root (path separators, traversal, hidden files).
        if not name or name != os.path.basename(name) \
                or name.startswith(".") or "/" in name or "\\" in name:
            raise UnknownGraphError(name)
        return os.path.join(self.root, name)

    def list_graphs(self) -> List[str]:
        """Names of the stores under the root (open or not), sorted."""
        names = []
        for entry in sorted(os.listdir(self.root)):
            if os.path.exists(os.path.join(self.root, entry, MANIFEST_NAME)):
                names.append(entry)
        return names

    # -- handle lifecycle ----------------------------------------------

    def acquire(self, name: str) -> GraphHandle:
        """The (possibly fresh) handle for ``name``; refcount += 1."""
        with self._lock:
            self._check_open()
            handle = self._handles.get(name)
            if handle is None:
                handle = self._open(name)
                self._handles[name] = handle
            handle.refcount += 1
            self._sequence += 1
            handle._sequence = self._sequence
            return handle

    def release(self, name: str) -> None:
        """Drop one reference; idle handles stay warm until evicted."""
        with self._lock:
            handle = self._handles.get(name)
            if handle is not None and handle.refcount > 0:
                handle.refcount -= 1

    def _open(self, name: str) -> GraphHandle:
        directory = self._directory(name)
        if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise UnknownGraphError(name)
        self._evict_idle()
        store = PersistentGraph.open(directory, materialize=True,
                                     replicate=self.replicate)
        engine = Engine(store.graph(), cache=self._cache)
        async_engine = AsyncEngine(
            engine,
            max_concurrency=self.max_concurrency
            if self.max_concurrency is not None else self.max_workers,
            max_queue_depth=self.max_queue_depth,
            default_deadline=self.default_deadline,
            executor=self._executor)
        return GraphHandle(name, store, engine, async_engine)

    def _evict_idle(self) -> None:  # guarded-by: _lock
        """Close least-recently-used idle handles past ``max_open``.

        A handle is evictable only when *both* its refcount is 0 (no
        caller holds it) and its async engine is idle (no admitted query
        is still running or queued) — an in-flight query keeps its graph
        alive even if the HTTP tier already released the handle.
        """
        while len(self._handles) >= self.max_open:
            idle = [h for h in self._handles.values()
                    if h.refcount == 0 and h.async_engine.idle]
            if not idle:
                raise ServiceError(
                    "registry holds {} busy graphs (max_open={}); "
                    "release one before opening another".format(
                        len(self._handles), self.max_open))
            victim = min(idle, key=lambda h: h._sequence)
            self._close_handle(self._handles.pop(victim.name))

    @staticmethod
    def _close_handle(handle: GraphHandle) -> None:
        handle.async_engine.close()
        handle.store.close()

    # -- tenancy -------------------------------------------------------

    def quota(self, tenant: str) -> int:
        return self._quotas.get(tenant, self.default_quota)

    def admit(self, tenant: str) -> _Admission:
        """Admission gate: raises :class:`QuotaExceededError` at quota.

        Returns a context-manager token whose ``release()`` (or ``with``
        exit) returns the tenant's slot exactly once.
        """
        with self._lock:
            self._check_open()
            quota = self.quota(tenant)
            inflight = self._tenant_inflight.get(tenant, 0)
            if inflight >= quota:
                raise QuotaExceededError(tenant, quota, retry_after=1.0)
            self._tenant_inflight[tenant] = inflight + 1
        return _Admission(self, tenant)

    def _release_tenant(self, tenant: str) -> None:
        with self._lock:
            count = self._tenant_inflight.get(tenant, 0)
            if count <= 1:
                self._tenant_inflight.pop(tenant, None)
            else:
                self._tenant_inflight[tenant] = count - 1

    def tenants(self) -> Dict[str, int]:
        """Current per-tenant in-flight counts (a snapshot)."""
        with self._lock:
            return dict(self._tenant_inflight)

    # -- teardown / introspection --------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("registry is closed")

    async def aclose(self, deadline: Optional[float] = 30.0) -> None:
        """Drain every graph's in-flight queries, then close everything."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            await handle.async_engine.aclose(deadline=deadline)
            handle.store.close()
        self._executor.shutdown(wait=True)
        release_resource(self._leak_token)

    def close(self) -> None:
        """Synchronous teardown (idempotent): handles, executor, cache."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            self._close_handle(handle)
        self._executor.shutdown(wait=True)
        release_resource(self._leak_token)

    def __enter__(self) -> "GraphRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def readiness(self) -> "Tuple[bool, Dict[str, Any]]":
        """``(ready, detail)`` for the ``/readyz`` probe.

        Ready means the registry can serve *and mutate*: it is open,
        no open store is in read-only degraded mode, and no engine's
        parallel pool has dead workers awaiting respawn.  A process can
        be live (``/healthz`` 200) while unready — e.g. every query
        still serves but the WAL rejected a write and mutations 503.
        """
        with self._lock:
            if self._closed:
                return False, {"reason": "registry is closed"}
            degraded = sorted(
                name for name, handle in self._handles.items()
                if handle.store.degraded)
            unhealthy = sorted(
                name for name, handle in self._handles.items()
                if not handle.engine.pool_healthy())
            detail: Dict[str, Any] = {
                "open_graphs": sorted(self._handles),
                "degraded": degraded,
                "pool_unhealthy": unhealthy,
            }
            return (not degraded and not unhealthy), detail

    def stats(self) -> Dict[str, Any]:
        """Registry-level summary: open graphs, tenants, shared cache."""
        with self._lock:
            return {
                "root": self.root,
                "open_graphs": sorted(self._handles),
                "refcounts": {name: handle.refcount
                              for name, handle in self._handles.items()},
                "tenants_inflight": dict(self._tenant_inflight),
                "result_cache": None if self._cache is None
                else self._cache.stats(),
            }

    def __repr__(self) -> str:
        return "GraphRegistry<{}, {} open{}>".format(
            self.root, len(self._handles), ", closed" if self._closed else "")
