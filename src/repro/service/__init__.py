"""The async query service tier: awaitable engine, registry, HTTP server.

This package turns the single-process library into a serving stack:

* :class:`~repro.service.async_engine.AsyncEngine` — an asyncio facade
  over :class:`~repro.engine.engine.Engine` with bounded concurrency,
  per-query deadlines, cooperative cancellation, and admission control.
* :class:`~repro.service.registry.GraphRegistry` — multi-tenant, named
  :class:`~repro.storage.PersistentGraph` stores with ref-counted
  lifecycle and per-tenant quotas.
* :class:`~repro.service.http.HttpServer` / :func:`~repro.service.http.serve`
  — the stdlib-only HTTP/JSON front end (``repro serve`` on the CLI).
* :class:`~repro.service.client.ReproClient` — the retrying client SDK
  (capped exponential backoff + jitter, idempotent operations only).

See ``docs/serving.md`` for the operational guide.
"""

from repro.service.async_engine import AsyncEngine, Deadline
from repro.service.client import ReproClient
from repro.service.http import HttpServer, serve
from repro.service.registry import GraphHandle, GraphRegistry

__all__ = [
    "AsyncEngine",
    "Deadline",
    "GraphHandle",
    "GraphRegistry",
    "HttpServer",
    "ReproClient",
    "serve",
]
