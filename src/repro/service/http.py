"""A minimal asyncio HTTP/1.1 JSON server over the graph registry.

Stdlib-only (``asyncio.start_server`` + hand-rolled request framing — no
new dependencies), one short-lived connection per request
(``Connection: close``), JSON in/out.  The protocol surface:

==========  =======================================  =====================
method      path                                     body / response
==========  =======================================  =====================
GET         ``/healthz``                             liveness (no auth)
GET         ``/readyz``                              readiness (no auth)
GET         ``/v1/graphs``                           registry listing
POST        ``/v1/graphs/{name}/query``              ``{"query": ...}`` →
                                                     sorted pair list
POST        ``/v1/graphs/{name}/explain``            EXPLAIN text
GET         ``/v1/graphs/{name}/stats``              store + cache + slots
POST        ``/v1/graphs/{name}/mutate``             edge add/remove batch
POST        ``/v1/graphs/{name}/checkpoint``         fold WAL, new gen
==========  =======================================  =====================

Query bodies: ``query`` (PathQL text; or ``queries`` for a batch),
optional ``sources`` / ``targets`` lists, ``max_length``, ``processes``,
and ``deadline_ms`` — the per-request deadline enforced by
:class:`~repro.service.async_engine.AsyncEngine`.

Auth and backoff contract
-------------------------
``tokens`` maps bearer tokens to tenant names; requests must send
``Authorization: Bearer <token>`` (pass no tokens to run open, every
caller the ``"anonymous"`` tenant).  Error mapping:

* 401 — missing/unknown token (``WWW-Authenticate: Bearer``),
* 404 — unknown graph name,
* 400 — malformed body, PathQL syntax/compile errors,
* 413 — request body over the size cap (``retriable: false`` — the same
  payload will never fit; resending it is pointless),
* 429 — shed by admission control or tenant quota; the ``Retry-After``
  header carries the backoff seconds to wait before retrying,
* 503 — the store is in read-only degraded mode (WAL write failed);
  queries still serve, mutations are refused with ``retriable: true``
  and ``Retry-After`` — a checkpoint heals the store (see
  ``docs/robustness.md``),
* 504 — the request's ``deadline_ms`` expired (queued or running); retry
  with a larger budget or at lower load,
* 500 — anything else (the body names the exception class).

``GET /readyz`` (no auth) distinguishes *ready* from merely live: 200
only while the registry is open, no open store is degraded, and every
parallel pool is healthy; otherwise 503 with the failing checks listed.

Every response carries ``X-Repro-Graph-Version`` when a graph was
resolved, so clients can correlate answers with mutation versions.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.errors import (
    AuthenticationError,
    DeadlineExceededError,
    OverloadedError,
    PathAlgebraError,
    ServiceError,
    StoreDegradedError,
    UnknownGraphError,
)
from repro.faults import fault_hook
from repro.service.registry import GraphHandle, GraphRegistry

__all__ = ["HttpServer", "serve"]

#: Largest accepted request body; bigger payloads get a 413.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Budget for a client to deliver its request head + body.
READ_TIMEOUT = 30.0

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class _BadRequest(ServiceError):
    """Malformed request framing or body (HTTP 400)."""


class _PayloadTooLarge(_BadRequest):
    """Request body over ``max_body`` (HTTP 413, never retriable)."""


class HttpServer:
    """The asyncio HTTP front end bound to one :class:`GraphRegistry`."""

    def __init__(self, registry: GraphRegistry,
                 tokens: Optional[Dict[str, str]] = None,
                 max_body: int = MAX_BODY_BYTES):
        self.registry = registry
        self.tokens = dict(tokens or {})
        self.max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and serve; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self, deadline: Optional[float] = 30.0) -> None:
        """Stop accepting, drain queries, close every store (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.registry.aclose(deadline=deadline)

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            slow = fault_hook("http.slow_client")
            if slow is not None:
                # Injected "slow client": stall before the request is
                # read so the READ_TIMEOUT budget is what bounds us.
                await asyncio.sleep(slow.seconds)
            try:
                method, path, headers, body = await asyncio.wait_for(
                    self._read_request(reader), READ_TIMEOUT)
            except asyncio.TimeoutError:
                return
            except _PayloadTooLarge as error:
                await self._respond(writer, 413,
                                    {"error": str(error),
                                     "retriable": False})
                return
            except (_BadRequest, asyncio.IncompleteReadError,
                    ConnectionError) as error:
                await self._respond(writer, 400,
                                    {"error": str(error) or "bad request",
                                     "retriable": False})
                return
            status, payload, extra = await self._dispatch(
                method, path, headers, body)
            drop = fault_hook("http.connection_drop")
            if drop is not None:
                # Injected mid-response failure: hard-abort the socket
                # so the client sees a reset, never a truncated 200.
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                return
            await self._respond(writer, status, payload, extra)
            self.requests_served += 1
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _BadRequest("empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise _BadRequest("bad Content-Length") from exc
        if length > self.max_body:
            raise _PayloadTooLarge(
                "body of {} bytes exceeds the {} byte limit".format(
                    length, self.max_body))
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, Any],
                       extra_headers: Optional[Dict[str, str]] = None
                       ) -> None:
        data = json.dumps(payload, default=str).encode("utf-8")
        head = ["HTTP/1.1 {} {}".format(status,
                                        _STATUS_TEXT.get(status, "Status")),
                "Content-Type: application/json",
                "Content-Length: {}".format(len(data)),
                "Connection: close"]
        for key, value in (extra_headers or {}).items():
            head.append("{}: {}".format(key, value))
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + data)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes
                        ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        started = time.perf_counter()
        try:
            if path == "/healthz" and method == "GET":
                return 200, {"status": "ok"}, {}
            if path == "/readyz" and method == "GET":
                ready_now, detail = self.registry.readiness()
                if ready_now:
                    return 200, dict(detail, status="ready"), {}
                return 503, dict(detail, status="unready",
                                 retriable=True), {"Retry-After": "1"}
            tenant = self._authenticate(headers)
            if path == "/v1/graphs" and method == "GET":
                return 200, {"graphs": self.registry.list_graphs(),
                             "stats": self.registry.stats()}, {}
            name, action = self._parse_graph_path(path)
            admission = self.registry.admit(tenant)
            try:
                handle = self.registry.acquire(name)
                try:
                    payload = await self._run_action(
                        handle, method, action, self._parse_body(body),
                        tenant)
                    version = handle.engine.graph.version()
                finally:
                    self.registry.release(name)
            finally:
                admission.release()
            payload.setdefault("elapsed_ms", round(
                (time.perf_counter() - started) * 1000.0, 3))
            return 200, payload, {"X-Repro-Graph-Version": str(version)}
        except AuthenticationError as error:
            return 401, {"error": str(error), "retriable": False}, \
                {"WWW-Authenticate": "Bearer"}
        except UnknownGraphError as error:
            return 404, {"error": str(error), "retriable": False}, {}
        except DeadlineExceededError as error:
            return 504, {"error": str(error), "retriable": True,
                         "phase": error.phase}, {}
        except OverloadedError as error:
            # The backoff contract: 429 + Retry-After, client retries
            # with jittered exponential backoff from that floor.
            return 429, {"error": str(error), "retriable": True,
                         "retry_after": error.retry_after}, \
                {"Retry-After": "{:g}".format(error.retry_after)}
        except _BadRequest as error:
            return 400, {"error": str(error), "retriable": False}, {}
        except StoreDegradedError as error:
            # Must precede PathAlgebraError: StoreDegradedError is a
            # StorageError and would otherwise map to a terminal 400.
            # Degradation is transient — a checkpoint heals the store —
            # so the contract is 503 + Retry-After, client may retry.
            return 503, {"error": str(error), "retriable": True,
                         "degraded": True,
                         "retry_after": error.retry_after}, \
                {"Retry-After": "{:g}".format(error.retry_after)}
        except PathAlgebraError as error:
            return 400, {"error": str(error), "retriable": False,
                         "type": type(error).__name__}, {}
        except Exception as error:  # pragma: no cover - defensive surface
            return 500, {"error": str(error), "retriable": False,
                         "type": type(error).__name__}, {}

    def _authenticate(self, headers: Dict[str, str]) -> str:
        if not self.tokens:
            return "anonymous"
        authorization = headers.get("authorization", "")
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() != "bearer" or token.strip() not in self.tokens:
            raise AuthenticationError(
                "missing or unknown bearer token")
        return self.tokens[token.strip()]

    @staticmethod
    def _parse_graph_path(path: str) -> Tuple[str, str]:
        parts = [p for p in path.split("/") if p]
        # /v1/graphs/{name}/{action}
        if len(parts) == 4 and parts[0] == "v1" and parts[1] == "graphs":
            return parts[2], parts[3]
        raise UnknownGraphError(path)

    def _parse_body(self, body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadRequest("body is not valid JSON: {}".format(exc)) \
                from exc
        if not isinstance(parsed, dict):
            raise _BadRequest("body must be a JSON object")
        return parsed

    # -- actions -------------------------------------------------------

    async def _run_action(self, handle: GraphHandle, method: str,
                          action: str, body: Dict[str, Any],
                          tenant: str) -> Dict[str, Any]:
        runner: Optional[Callable[..., Awaitable[Dict[str, Any]]]] = {
            ("POST", "query"): self._action_query,
            ("POST", "explain"): self._action_explain,
            ("GET", "stats"): self._action_stats,
            ("POST", "mutate"): self._action_mutate,
            ("POST", "checkpoint"): self._action_checkpoint,
        }.get((method, action))
        if runner is None:
            raise UnknownGraphError("{} {}".format(method, action))
        return await runner(handle, body, tenant)

    @staticmethod
    def _deadline_of(body: Dict[str, Any]) -> Optional[float]:
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is None:
            return None
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise _BadRequest("deadline_ms must be a positive number")
        return float(deadline_ms) / 1000.0

    @staticmethod
    def _endpoints_of(body: Dict[str, Any], key: str) -> Optional[frozenset]:
        value = body.get(key)
        if value is None:
            return None
        if not isinstance(value, list):
            raise _BadRequest("{} must be a list of vertices".format(key))
        return frozenset(value)

    async def _action_query(self, handle: GraphHandle,
                            body: Dict[str, Any],
                            tenant: str) -> Dict[str, Any]:
        deadline = self._deadline_of(body)
        sources = self._endpoints_of(body, "sources")
        targets = self._endpoints_of(body, "targets")
        max_length = body.get("max_length")
        processes = body.get("processes")
        if "queries" in body:
            queries = body["queries"]
            if not isinstance(queries, list) or not all(
                    isinstance(q, str) for q in queries):
                raise _BadRequest("queries must be a list of PathQL strings")
            answers = await handle.async_engine.pairs_batch(
                queries, sources=sources, targets=targets,
                max_length=max_length, processes=processes,
                deadline=deadline)
            return {"graph": handle.name, "tenant": tenant,
                    "results": [{"query": q,
                                 "count": len(a),
                                 "pairs": sorted(map(list, a), key=repr)}
                                for q, a in zip(queries, answers)]}
        query = body.get("query")
        if not isinstance(query, str):
            raise _BadRequest('body must carry "query" (PathQL text)')
        cache_hits_before = \
            handle.async_engine.counters["cache_fast_hits"]
        answer = await handle.async_engine.pairs(
            query, sources=sources, targets=targets,
            max_length=max_length, processes=processes, deadline=deadline)
        cached = handle.async_engine.counters["cache_fast_hits"] \
            > cache_hits_before
        return {"graph": handle.name, "tenant": tenant, "query": query,
                "count": len(answer), "cached": cached,
                "pairs": sorted(map(list, answer), key=repr)}

    async def _action_explain(self, handle: GraphHandle,
                              body: Dict[str, Any],
                              tenant: str) -> Dict[str, Any]:
        query = body.get("query")
        if not isinstance(query, str):
            raise _BadRequest('body must carry "query" (PathQL text)')
        text = await handle.async_engine.explain(
            query, max_length=body.get("max_length"),
            sources=self._endpoints_of(body, "sources"),
            targets=self._endpoints_of(body, "targets"),
            deadline=self._deadline_of(body))
        return {"graph": handle.name, "query": query, "explain": text}

    async def _action_stats(self, handle: GraphHandle,
                            body: Dict[str, Any],
                            tenant: str) -> Dict[str, Any]:
        return {"graph": handle.name, "info": handle.info(),
                "registry": self.registry.stats()}

    async def _action_mutate(self, handle: GraphHandle,
                             body: Dict[str, Any],
                             tenant: str) -> Dict[str, Any]:
        additions = body.get("add_edges", [])
        removals = body.get("remove_edges", [])
        for triples, label_ in ((additions, "add_edges"),
                                (removals, "remove_edges")):
            if not isinstance(triples, list) or not all(
                    isinstance(t, list) and len(t) == 3 for t in triples):
                raise _BadRequest(
                    "{} must be a list of [tail, label, head] "
                    "triples".format(label_))
        if not additions and not removals:
            raise _BadRequest("mutate body carries no add_edges/remove_edges")

        def apply(graph: Any) -> Dict[str, int]:
            added = removed = 0
            for tail, label, head in additions:
                graph.add_edge(tail, label, head)
                added += 1
            for tail, label, head in removals:
                if graph.has_edge(tail, label, head):
                    graph.remove_edge(tail, label, head)
                    removed += 1
            return {"added": added, "removed": removed}

        outcome = await handle.async_engine.mutate(
            apply, deadline=self._deadline_of(body))
        outcome.update(graph=handle.name,
                       version=handle.engine.graph.version())
        return outcome

    async def _action_checkpoint(self, handle: GraphHandle,
                                 body: Dict[str, Any],
                                 tenant: str) -> Dict[str, Any]:
        info = await handle.checkpoint(deadline=self._deadline_of(body))
        return {"graph": handle.name, "info": info}


async def serve(root: str, host: str = "127.0.0.1", port: int = 8080,
                tokens: Optional[Dict[str, str]] = None,
                registry: Optional[GraphRegistry] = None,
                ready: Optional[Callable[[str, int], None]] = None,
                stop_event: Optional[asyncio.Event] = None,
                **registry_options: Any) -> None:
    """Run the HTTP server until ``stop_event`` is set.

    ``ready(host, port)`` fires once the socket is bound (the CLI prints
    the endpoint; tests grab the ephemeral port).  Shutdown is graceful:
    stop accepting, drain in-flight queries, flush and close every store.
    """
    own_registry = registry is None
    if registry is None:
        registry = GraphRegistry(root, **registry_options)
    server = HttpServer(registry, tokens=tokens)
    bound_host, bound_port = await server.start(host=host, port=port)
    if ready is not None:
        ready(bound_host, bound_port)
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        if own_registry:
            await server.stop()
        else:
            server_only = server._server
            if server_only is not None:
                server_only.close()
                await server_only.wait_closed()
                server._server = None
