"""A minimal asyncio HTTP/1.1 JSON server over the graph registry.

Stdlib-only (``asyncio.start_server`` + hand-rolled request framing — no
new dependencies), JSON in/out.  Connections default to one request
(``Connection: close``); a client that sends ``Connection: keep-alive``
gets the connection held open for further requests, bounded by a
per-connection request cap and an idle timeout (see *Keep-alive* below).
The protocol surface:

==========  =======================================  =====================
method      path                                     body / response
==========  =======================================  =====================
GET         ``/healthz``                             liveness (no auth)
GET         ``/readyz``                              readiness (no auth)
GET         ``/v1/graphs``                           registry listing
POST        ``/v1/graphs/{name}/query``              ``{"query": ...}`` →
                                                     sorted pair list
POST        ``/v1/graphs/{name}/explain``            EXPLAIN text
GET         ``/v1/graphs/{name}/stats``              store + cache + slots
POST        ``/v1/graphs/{name}/mutate``             edge add/remove batch
POST        ``/v1/graphs/{name}/checkpoint``         fold WAL, new gen
GET         ``/replication/snapshot``                snapshot bytes (binary)
GET         ``/replication/wal?cursor=S:O``          WAL frame run (binary)
==========  =======================================  =====================

The two ``/replication/*`` reads (authenticated; ``?graph=`` selects the
store, optional when exactly one is served) are the primary side of
WAL-shipped replication — binary bodies whose metadata travels in
``X-Repro-*`` headers (snapshot version, start/next cursor, primary
version, intended byte count).  They require the store to carry a
segment log (``repro serve --replicate``); see ``docs/replication.md``.
A cursor that has fallen off the retained log gets **410 Gone** — the
replica must re-bootstrap, retrying is pointless.

Keep-alive
----------
The server only reuses a connection when the *client* asks
(``Connection: keep-alive``), so close-framed clients — including ones
that read to EOF — are untouched.  Reuse is bounded: at most
``keepalive_max_requests`` per connection (the response that hits the
cap says ``Connection: close``) and ``keepalive_idle_timeout`` seconds
of silence between requests (the connection is then quietly dropped —
an idle peer holding a socket costs a file descriptor, not a request).
The replica tailer rides this: one connection per poll loop instead of
one per poll.

Access log
----------
``access_log`` (off by default; ``repro serve --access-log``) is a
callable receiving one JSON-ready dict per served request: timestamp,
remote address, method, path, status, elapsed ms, response bytes,
tenant, and the request's index on its connection.  The CLI writes each
as one JSON line.

Query bodies: ``query`` (PathQL text; or ``queries`` for a batch),
optional ``sources`` / ``targets`` lists, ``max_length``, ``processes``,
and ``deadline_ms`` — the per-request deadline enforced by
:class:`~repro.service.async_engine.AsyncEngine`.

Auth and backoff contract
-------------------------
``tokens`` maps bearer tokens to tenant names; requests must send
``Authorization: Bearer <token>`` (pass no tokens to run open, every
caller the ``"anonymous"`` tenant).  Error mapping:

* 401 — missing/unknown token (``WWW-Authenticate: Bearer``),
* 404 — unknown graph name,
* 400 — malformed body, PathQL syntax/compile errors,
* 413 — request body over the size cap (``retriable: false`` — the same
  payload will never fit; resending it is pointless),
* 429 — shed by admission control or tenant quota; the ``Retry-After``
  header carries the backoff seconds to wait before retrying,
* 503 — the store is in read-only degraded mode (WAL write failed);
  queries still serve, mutations are refused with ``retriable: true``
  and ``Retry-After`` — a checkpoint heals the store (see
  ``docs/robustness.md``),
* 504 — the request's ``deadline_ms`` expired (queued or running); retry
  with a larger budget or at lower load,
* 500 — anything else (the body names the exception class).

``GET /readyz`` (no auth) distinguishes *ready* from merely live: 200
only while the registry is open, no open store is degraded, and every
parallel pool is healthy; otherwise 503 with the failing checks listed.

Every response carries ``X-Repro-Graph-Version`` when a graph was
resolved, so clients can correlate answers with mutation versions.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple, \
    Union
from urllib.parse import parse_qsl, urlsplit

from repro.replication import REPLICA_META_NAME

from repro.errors import (
    AuthenticationError,
    DeadlineExceededError,
    OverloadedError,
    PathAlgebraError,
    ReplicaReadOnlyError,
    ReplicaStaleError,
    ReplicationCorruptionError,
    ReplicationCursorGapError,
    ReplicationError,
    ServiceError,
    StorageError,
    StoreDegradedError,
    UnknownGraphError,
)
from repro.faults import fault_hook
from repro.service.registry import GraphHandle, GraphRegistry

__all__ = ["HttpServer", "ReplicaHttpServer", "serve", "serve_replica"]

#: Largest accepted request body; bigger payloads get a 413.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Budget for a client to deliver its request head + body.
READ_TIMEOUT = 30.0

#: Keep-alive bounds: requests per connection, and idle seconds between
#: requests before the server quietly drops the socket.
KEEPALIVE_MAX_REQUESTS = 100
KEEPALIVE_IDLE_TIMEOUT = 5.0

#: Upper bound a ``/replication/wal`` request may ask for per fetch.
MAX_SHIP_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 410: "Gone",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: An access-log sink: receives one JSON-ready dict per served request.
AccessLog = Callable[[Dict[str, Any]], None]


class _BadRequest(ServiceError):
    """Malformed request framing or body (HTTP 400)."""


class _PayloadTooLarge(_BadRequest):
    """Request body over ``max_body`` (HTTP 413, never retriable)."""


class _ConnectionClosed(Exception):
    """The peer closed between requests — a quiet end, not an error."""


class HttpServer:
    """The asyncio HTTP front end bound to one :class:`GraphRegistry`."""

    def __init__(self, registry: GraphRegistry,
                 tokens: Optional[Dict[str, str]] = None,
                 max_body: int = MAX_BODY_BYTES,
                 access_log: Optional[AccessLog] = None,
                 keepalive_max_requests: int = KEEPALIVE_MAX_REQUESTS,
                 keepalive_idle_timeout: float = KEEPALIVE_IDLE_TIMEOUT):
        self.registry = registry
        self.tokens = dict(tokens or {})
        self.max_body = max_body
        self.access_log = access_log
        self.keepalive_max_requests = max(1, keepalive_max_requests)
        self.keepalive_idle_timeout = keepalive_idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0
        self.connections_reused = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and serve; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self, deadline: Optional[float] = 30.0) -> None:
        """Stop accepting, drain queries, close every store (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.registry.aclose(deadline=deadline)

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        served_here = 0
        try:
            slow = fault_hook("http.slow_client")
            if slow is not None:
                # Injected "slow client": stall before the request is
                # read so the READ_TIMEOUT budget is what bounds us.
                await asyncio.sleep(slow.seconds)
            while True:
                # First request gets the full delivery budget; a reused
                # connection sitting silent only gets the idle timeout.
                timeout = READ_TIMEOUT if served_here == 0 \
                    else self.keepalive_idle_timeout
                try:
                    method, path, headers, body = await asyncio.wait_for(
                        self._read_request(reader), timeout)
                except (asyncio.TimeoutError, _ConnectionClosed):
                    return
                except _PayloadTooLarge as error:
                    await self._respond(writer, 413,
                                        {"error": str(error),
                                         "retriable": False})
                    return
                except (_BadRequest, asyncio.IncompleteReadError,
                        ConnectionError) as error:
                    await self._respond(writer, 400,
                                        {"error": str(error)
                                         or "bad request",
                                         "retriable": False})
                    return
                started = time.perf_counter()
                status, payload, extra = await self._dispatch(
                    method, path, headers, body)
                drop = fault_hook("http.connection_drop")
                if drop is not None:
                    # Injected mid-response failure: hard-abort the
                    # socket so the client sees a reset, never a
                    # truncated 200.
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    return
                # Reuse only on explicit client opt-in, and below the
                # per-connection cap — the capped response says close.
                keep = served_here + 1 < self.keepalive_max_requests and \
                    headers.get("connection", "").lower() == "keep-alive"
                sent = await self._respond(writer, status, payload, extra,
                                           keep_alive=keep)
                served_here += 1
                self.requests_served += 1
                if served_here > 1:
                    self.connections_reused += 1
                self._log_access(writer, method, path, headers, status,
                                 started, sent, served_here)
                if not keep:
                    return
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _log_access(self, writer: asyncio.StreamWriter, method: str,
                    path: str, headers: Dict[str, str], status: int,
                    started: float, sent: int, seq: int) -> None:
        if self.access_log is None:
            return
        try:
            tenant = self._authenticate(headers)
        except AuthenticationError:
            tenant = None
        peer = writer.get_extra_info("peername")
        try:
            self.access_log({
                "ts": round(time.time(), 6),
                "remote": "{}:{}".format(peer[0], peer[1])
                if isinstance(peer, tuple) and len(peer) >= 2 else str(peer),
                "method": method,
                "path": path,
                "status": status,
                "elapsed_ms": round(
                    (time.perf_counter() - started) * 1000.0, 3),
                "bytes": sent,
                "tenant": tenant,
                "request_on_connection": seq,
            })
        except Exception:  # pragma: no cover - logging must never kill serving
            pass

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        raw_line = await reader.readline()
        if not raw_line:
            # EOF before any bytes: the peer closed (normal between
            # keep-alive requests) — not a protocol error.
            raise _ConnectionClosed()
        request_line = raw_line.decode("latin-1").strip()
        if not request_line:
            raise _BadRequest("empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise _BadRequest("bad Content-Length") from exc
        if length > self.max_body:
            raise _PayloadTooLarge(
                "body of {} bytes exceeds the {} byte limit".format(
                    length, self.max_body))
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Union[Dict[str, Any], bytes],
                       extra_headers: Optional[Dict[str, str]] = None,
                       keep_alive: bool = False) -> int:
        if isinstance(payload, bytes):
            data, content_type = payload, "application/octet-stream"
        else:
            data = json.dumps(payload, default=str).encode("utf-8")
            content_type = "application/json"
        head = ["HTTP/1.1 {} {}".format(status,
                                        _STATUS_TEXT.get(status, "Status")),
                "Content-Type: {}".format(content_type),
                "Content-Length: {}".format(len(data))]
        if keep_alive:
            head.append("Connection: keep-alive")
            head.append("Keep-Alive: timeout={:g}, max={}".format(
                self.keepalive_idle_timeout, self.keepalive_max_requests))
        else:
            head.append("Connection: close")
        for key, value in (extra_headers or {}).items():
            head.append("{}: {}".format(key, value))
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + data)
        await writer.drain()
        return len(data)

    # -- routing -------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes
                        ) -> Tuple[int, Union[Dict[str, Any], bytes],
                                   Dict[str, str]]:
        """Route and map every failure to its documented status code.

        The routing itself lives in :meth:`_route` (overridden by
        :class:`ReplicaHttpServer`); the error contract is shared.
        """
        try:
            return await self._route(method, path, headers, body)
        except AuthenticationError as error:
            return 401, {"error": str(error), "retriable": False}, \
                {"WWW-Authenticate": "Bearer"}
        except UnknownGraphError as error:
            return 404, {"error": str(error), "retriable": False}, {}
        except DeadlineExceededError as error:
            return 504, {"error": str(error), "retriable": True,
                         "phase": error.phase}, {}
        except OverloadedError as error:
            # The backoff contract: 429 + Retry-After, client retries
            # with jittered exponential backoff from that floor.
            return 429, {"error": str(error), "retriable": True,
                         "retry_after": error.retry_after}, \
                {"Retry-After": "{:g}".format(error.retry_after)}
        except _BadRequest as error:
            return 400, {"error": str(error), "retriable": False}, {}
        except ReplicaReadOnlyError as error:
            # A mutation sent to a replica: refusing is permanent until
            # the operator promotes, so 403, never retried.
            return 403, {"error": str(error), "retriable": False,
                         "replica": True, "read_only": True}, {}
        except ReplicationCursorGapError as error:
            # The cursor fell off the retained log; re-asking with the
            # same cursor can never succeed — the replica re-bootstraps.
            return 410, {"error": str(error), "retriable": False,
                         "rebootstrap": True, "cursor": error.cursor,
                         "first_retained": error.retained}, {}
        except ReplicaStaleError as error:
            return 503, {"error": str(error), "retriable": True,
                         "stale": True,
                         "lag_records": error.lag_records,
                         "lag_seconds": error.lag_seconds,
                         "retry_after": error.retry_after}, \
                {"Retry-After": "{:g}".format(error.retry_after),
                 "X-Repro-Replica-Lag": "records={}; seconds={:.3f}".format(
                     error.lag_records, error.lag_seconds)}
        except ReplicationCorruptionError as error:
            return 500, {"error": str(error), "retriable": False,
                         "type": type(error).__name__}, {}
        except ReplicationError as error:
            # Transient feed failure (e.g. an injected ship fault):
            # retriable, same contract as a degraded store.
            return 503, {"error": str(error), "retriable": True}, \
                {"Retry-After": "1"}
        except StoreDegradedError as error:
            # Must precede PathAlgebraError: StoreDegradedError is a
            # StorageError and would otherwise map to a terminal 400.
            # Degradation is transient — a checkpoint heals the store —
            # so the contract is 503 + Retry-After, client may retry.
            return 503, {"error": str(error), "retriable": True,
                         "degraded": True,
                         "retry_after": error.retry_after}, \
                {"Retry-After": "{:g}".format(error.retry_after)}
        except PathAlgebraError as error:
            return 400, {"error": str(error), "retriable": False,
                         "type": type(error).__name__}, {}
        except Exception as error:  # pragma: no cover - defensive surface
            return 500, {"error": str(error), "retriable": False,
                         "type": type(error).__name__}, {}

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes
                     ) -> Tuple[int, Union[Dict[str, Any], bytes],
                                Dict[str, str]]:
        started = time.perf_counter()
        path, params = self._split_target(path)
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}, {}
        if path == "/readyz" and method == "GET":
            ready_now, detail = self.registry.readiness()
            if ready_now:
                return 200, dict(detail, status="ready"), {}
            return 503, dict(detail, status="unready",
                             retriable=True), {"Retry-After": "1"}
        tenant = self._authenticate(headers)
        if path == "/v1/graphs" and method == "GET":
            return 200, {"graphs": self.registry.list_graphs(),
                         "stats": self.registry.stats()}, {}
        if path.startswith("/replication/"):
            return await self._route_replication(method, path, params)
        name, action = self._parse_graph_path(path)
        admission = self.registry.admit(tenant)
        try:
            handle = self.registry.acquire(name)
            try:
                payload = await self._run_action(
                    handle, method, action, self._parse_body(body),
                    tenant)
                version = handle.engine.graph.version()
            finally:
                self.registry.release(name)
        finally:
            admission.release()
        payload.setdefault("elapsed_ms", round(
            (time.perf_counter() - started) * 1000.0, 3))
        return 200, payload, {"X-Repro-Graph-Version": str(version)}

    @staticmethod
    def _split_target(target: str) -> Tuple[str, Dict[str, str]]:
        parts = urlsplit(target)
        return parts.path, dict(parse_qsl(parts.query))

    # -- replication feed (primary side) -------------------------------

    async def _route_replication(self, method: str, path: str,
                                 params: Dict[str, str]
                                 ) -> Tuple[int, bytes, Dict[str, str]]:
        action = path[len("/replication/"):]
        if method != "GET" or action not in ("snapshot", "wal"):
            raise UnknownGraphError("{} {}".format(method, path))
        name = params.get("graph", "")
        if not name:
            names = self.registry.list_graphs()
            if len(names) != 1:
                raise _BadRequest(
                    "graph parameter required ({} graphs "
                    "served)".format(len(names)))
            name = names[0]
        from repro.replication import PrimaryFeed
        loop = asyncio.get_running_loop()
        handle = self.registry.acquire(name)
        try:
            if handle.store.segments is None:
                raise _BadRequest(
                    "store {!r} has no segment log; serve with "
                    "--replicate to ship replication".format(name))
            feed = PrimaryFeed(handle.store)
            if action == "snapshot":
                data, meta = await loop.run_in_executor(
                    None, feed.snapshot)
                return 200, data, {
                    "X-Repro-Graph-Name": str(meta["graph"]),
                    "X-Repro-Snapshot": str(meta["snapshot"]),
                    "X-Repro-Snapshot-Version":
                        str(meta["snapshot_version"]),
                    "X-Repro-Replication-Cursor": str(meta["cursor"]),
                    "X-Repro-Primary-Version": str(meta["version"]),
                    "X-Repro-Bytes": str(meta["bytes"]),
                }
            cursor = params.get("cursor", "")
            if not cursor:
                raise _BadRequest("cursor parameter required")
            try:
                from repro.storage.segments import ReplicationCursor
                ReplicationCursor.parse(cursor)
            except ReplicationError as exc:
                # A malformed token is the client's bug (400), not a
                # transient feed failure (503).
                raise _BadRequest(str(exc)) from exc
            try:
                max_bytes = min(MAX_SHIP_BYTES,
                                int(params.get("max_bytes", 1 << 20)))
            except ValueError as exc:
                raise _BadRequest("bad max_bytes") from exc
            if max_bytes <= 0:
                raise _BadRequest("max_bytes must be positive")
            data, meta = await loop.run_in_executor(
                None, feed.wal, cursor, max_bytes)
            return 200, data, {
                "X-Repro-Graph-Name": str(meta["graph"]),
                "X-Repro-Next-Cursor": str(meta["cursor"]),
                "X-Repro-At-End": "1" if meta["at_end"] else "0",
                "X-Repro-Primary-Version": str(meta["version"]),
                "X-Repro-Bytes": str(meta["bytes"]),
            }
        finally:
            self.registry.release(name)

    def _authenticate(self, headers: Dict[str, str]) -> str:
        if not self.tokens:
            return "anonymous"
        authorization = headers.get("authorization", "")
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() != "bearer" or token.strip() not in self.tokens:
            raise AuthenticationError(
                "missing or unknown bearer token")
        return self.tokens[token.strip()]

    @staticmethod
    def _parse_graph_path(path: str) -> Tuple[str, str]:
        parts = [p for p in path.split("/") if p]
        # /v1/graphs/{name}/{action}
        if len(parts) == 4 and parts[0] == "v1" and parts[1] == "graphs":
            return parts[2], parts[3]
        raise UnknownGraphError(path)

    def _parse_body(self, body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadRequest("body is not valid JSON: {}".format(exc)) \
                from exc
        if not isinstance(parsed, dict):
            raise _BadRequest("body must be a JSON object")
        return parsed

    # -- actions -------------------------------------------------------

    async def _run_action(self, handle: GraphHandle, method: str,
                          action: str, body: Dict[str, Any],
                          tenant: str) -> Dict[str, Any]:
        runner: Optional[Callable[..., Awaitable[Dict[str, Any]]]] = {
            ("POST", "query"): self._action_query,
            ("POST", "explain"): self._action_explain,
            ("GET", "stats"): self._action_stats,
            ("POST", "mutate"): self._action_mutate,
            ("POST", "checkpoint"): self._action_checkpoint,
        }.get((method, action))
        if runner is None:
            raise UnknownGraphError("{} {}".format(method, action))
        return await runner(handle, body, tenant)

    @staticmethod
    def _deadline_of(body: Dict[str, Any]) -> Optional[float]:
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is None:
            return None
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise _BadRequest("deadline_ms must be a positive number")
        return float(deadline_ms) / 1000.0

    @staticmethod
    def _endpoints_of(body: Dict[str, Any], key: str) -> Optional[frozenset]:
        value = body.get(key)
        if value is None:
            return None
        if not isinstance(value, list):
            raise _BadRequest("{} must be a list of vertices".format(key))
        return frozenset(value)

    async def _action_query(self, handle: GraphHandle,
                            body: Dict[str, Any],
                            tenant: str) -> Dict[str, Any]:
        deadline = self._deadline_of(body)
        sources = self._endpoints_of(body, "sources")
        targets = self._endpoints_of(body, "targets")
        max_length = body.get("max_length")
        processes = body.get("processes")
        if "queries" in body:
            queries = body["queries"]
            if not isinstance(queries, list) or not all(
                    isinstance(q, str) for q in queries):
                raise _BadRequest("queries must be a list of PathQL strings")
            answers = await handle.async_engine.pairs_batch(
                queries, sources=sources, targets=targets,
                max_length=max_length, processes=processes,
                deadline=deadline)
            return {"graph": handle.name, "tenant": tenant,
                    "results": [{"query": q,
                                 "count": len(a),
                                 "pairs": sorted(map(list, a), key=repr)}
                                for q, a in zip(queries, answers)]}
        query = body.get("query")
        if not isinstance(query, str):
            raise _BadRequest('body must carry "query" (PathQL text)')
        cache_hits_before = \
            handle.async_engine.counters["cache_fast_hits"]
        answer = await handle.async_engine.pairs(
            query, sources=sources, targets=targets,
            max_length=max_length, processes=processes, deadline=deadline)
        cached = handle.async_engine.counters["cache_fast_hits"] \
            > cache_hits_before
        return {"graph": handle.name, "tenant": tenant, "query": query,
                "count": len(answer), "cached": cached,
                "pairs": sorted(map(list, answer), key=repr)}

    async def _action_explain(self, handle: GraphHandle,
                              body: Dict[str, Any],
                              tenant: str) -> Dict[str, Any]:
        query = body.get("query")
        if not isinstance(query, str):
            raise _BadRequest('body must carry "query" (PathQL text)')
        text = await handle.async_engine.explain(
            query, max_length=body.get("max_length"),
            sources=self._endpoints_of(body, "sources"),
            targets=self._endpoints_of(body, "targets"),
            deadline=self._deadline_of(body))
        return {"graph": handle.name, "query": query, "explain": text}

    async def _action_stats(self, handle: GraphHandle,
                            body: Dict[str, Any],
                            tenant: str) -> Dict[str, Any]:
        return {"graph": handle.name, "info": handle.info(),
                "registry": self.registry.stats()}

    async def _action_mutate(self, handle: GraphHandle,
                             body: Dict[str, Any],
                             tenant: str) -> Dict[str, Any]:
        additions = body.get("add_edges", [])
        removals = body.get("remove_edges", [])
        for triples, label_ in ((additions, "add_edges"),
                                (removals, "remove_edges")):
            if not isinstance(triples, list) or not all(
                    isinstance(t, list) and len(t) == 3 for t in triples):
                raise _BadRequest(
                    "{} must be a list of [tail, label, head] "
                    "triples".format(label_))
        if not additions and not removals:
            raise _BadRequest("mutate body carries no add_edges/remove_edges")

        def apply(graph: Any) -> Dict[str, int]:
            added = removed = 0
            for tail, label, head in additions:
                graph.add_edge(tail, label, head)
                added += 1
            for tail, label, head in removals:
                if graph.has_edge(tail, label, head):
                    graph.remove_edge(tail, label, head)
                    removed += 1
            return {"added": added, "removed": removed}

        outcome = await handle.async_engine.mutate(
            apply, deadline=self._deadline_of(body))
        outcome.update(graph=handle.name,
                       version=handle.engine.graph.version())
        return outcome

    async def _action_checkpoint(self, handle: GraphHandle,
                                 body: Dict[str, Any],
                                 tenant: str) -> Dict[str, Any]:
        info = await handle.checkpoint(deadline=self._deadline_of(body))
        return {"graph": handle.name, "info": info}


class ReplicaHttpServer(HttpServer):
    """The read-only HTTP front end of one tailing replica.

    Same wire protocol and error contract as :class:`HttpServer` minus
    everything that writes: ``query``/``explain-free`` reads serve from
    the replica's applied state, ``mutate``/``checkpoint`` get **403**
    (:class:`~repro.errors.ReplicaReadOnlyError` — promote first), and
    ``/readyz`` reports *catching-up* (503) until the tailer has caught
    up at least once and is currently healthy.

    Every graph-scoped response carries
    ``X-Repro-Replica-Lag: records=N; seconds=S`` and
    ``X-Repro-Graph-Version`` (the applied version).  A request may
    bound its tolerated staleness with ``max_staleness_ms`` in the body
    (or the ``X-Repro-Max-Staleness-Ms`` header): when the replica's
    uncertainty window exceeds the bound the request gets **503** with
    ``Retry-After`` instead of a silently stale answer.
    """

    def __init__(self, replica: Any, tailer: Optional[Any] = None,
                 tokens: Optional[Dict[str, str]] = None,
                 max_body: int = MAX_BODY_BYTES,
                 access_log: Optional[AccessLog] = None,
                 keepalive_max_requests: int = KEEPALIVE_MAX_REQUESTS,
                 keepalive_idle_timeout: float = KEEPALIVE_IDLE_TIMEOUT):
        self.replica = replica
        self.tailer = tailer
        self.tokens = dict(tokens or {})
        self.max_body = max_body
        self.access_log = access_log
        self.keepalive_max_requests = max(1, keepalive_max_requests)
        self.keepalive_idle_timeout = keepalive_idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0
        self.connections_reused = 0

    async def stop(self, deadline: Optional[float] = 30.0) -> None:
        """Stop accepting; the caller owns the replica's lifecycle."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _lag_headers(self) -> Dict[str, str]:
        records, seconds = self.replica.lag()
        return {
            "X-Repro-Replica-Lag":
                "records={}; seconds={:.3f}".format(records, seconds),
            "X-Repro-Graph-Version": str(self.replica.applied_version),
        }

    @staticmethod
    def _staleness_bound(headers: Dict[str, str],
                         body: Dict[str, Any]) -> Optional[float]:
        value = body.get("max_staleness_ms",
                         headers.get("x-repro-max-staleness-ms"))
        if value is None:
            return None
        if isinstance(value, str):
            try:
                value = float(value)
            except ValueError as exc:
                raise _BadRequest(
                    "max_staleness_ms must be a number") from exc
        if not isinstance(value, (int, float)) or value < 0:
            raise _BadRequest("max_staleness_ms must be a non-negative "
                              "number")
        return float(value)

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes
                     ) -> Tuple[int, Union[Dict[str, Any], bytes],
                                Dict[str, str]]:
        started = time.perf_counter()
        path, _params = self._split_target(path)
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}, {}
        if path == "/readyz" and method == "GET":
            state = self.tailer.state() if self.tailer is not None else {
                "ready": True, "phase": "ready"}
            if state.get("ready"):
                return 200, dict(state, status="ready"), \
                    self._lag_headers()
            return 503, dict(state, status=state.get("phase",
                                                     "catching-up"),
                             retriable=True), \
                dict(self._lag_headers(), **{"Retry-After": "1"})
        tenant = self._authenticate(headers)
        if path == "/v1/graphs" and method == "GET":
            return 200, {"graphs": [self.replica.graph_name],
                         "replica": self.replica.info()}, \
                self._lag_headers()
        name, action = self._parse_graph_path(path)
        if name != self.replica.graph_name:
            raise UnknownGraphError(name)
        parsed = self._parse_body(body)
        bound = self._staleness_bound(headers, parsed)
        if bound is not None:
            self.replica.check_staleness(bound)
        if (method, action) == ("POST", "query"):
            payload = await self._replica_query(parsed, tenant)
        elif (method, action) == ("GET", "stats"):
            payload = {"graph": self.replica.graph_name,
                       "info": self.replica.info()}
            if self.tailer is not None:
                payload["tailer"] = self.tailer.state()
        elif (method, action) in (("POST", "mutate"),
                                  ("POST", "checkpoint")):
            raise ReplicaReadOnlyError(self.replica.directory)
        else:
            raise UnknownGraphError("{} {}".format(method, action))
        payload.setdefault("elapsed_ms", round(
            (time.perf_counter() - started) * 1000.0, 3))
        return 200, payload, self._lag_headers()

    @staticmethod
    def _lower_replica_query(query: str, sources, targets):
        """PathQL text -> ``(label_expr, sources, targets)`` for a replica.

        Replicas run the compact pairs kernel only, so the query must
        lower to a (possibly endpoint-bound) label RPQ — same fast path
        the primary engine routes eligible queries through.  Returns
        ``None`` as the expression when the lowering proves the answer
        empty (a bound endpoint excluded by the caller's filter).
        """
        from repro.engine.engine import Engine
        from repro.engine.rewrite import normalize
        from repro.lang import parse
        from repro.rpq.evaluation import lower_to_constrained_query
        expression = normalize(parse(query))
        constrained = lower_to_constrained_query(expression)
        if constrained is None:
            raise _BadRequest(
                "query {!r} needs the bounded edge-set engine; a replica "
                "answers label-path pairs() queries only".format(query))
        merged = Engine._constrained_filters(constrained, sources, targets)
        if merged is None:
            return None, None, None
        return (constrained.label_expression,) + merged

    async def _replica_query(self, body: Dict[str, Any],
                             tenant: str) -> Dict[str, Any]:
        for unsupported in ("max_length", "processes"):
            if body.get(unsupported) is not None:
                raise _BadRequest(
                    "{} is not supported on a replica".format(unsupported))
        sources = self._endpoints_of(body, "sources")
        targets = self._endpoints_of(body, "targets")
        loop = asyncio.get_running_loop()

        async def answer_one(query: str) -> frozenset:
            label, merged_sources, merged_targets = \
                self._lower_replica_query(query, sources, targets)
            if label is None:
                return frozenset()
            return await loop.run_in_executor(
                None, self.replica.pairs, label, merged_sources,
                merged_targets)

        if "queries" in body:
            queries = body["queries"]
            if not isinstance(queries, list) or not all(
                    isinstance(q, str) for q in queries):
                raise _BadRequest("queries must be a list of PathQL "
                                  "strings")
            answers = [await answer_one(q) for q in queries]
            return {"graph": self.replica.graph_name, "tenant": tenant,
                    "replica": True,
                    "results": [{"query": q, "count": len(a),
                                 "pairs": sorted(map(list, a), key=repr)}
                                for q, a in zip(queries, answers)]}
        query = body.get("query")
        if not isinstance(query, str):
            raise _BadRequest('body must carry "query" (PathQL text)')
        answer = await answer_one(query)
        return {"graph": self.replica.graph_name, "tenant": tenant,
                "replica": True, "query": query, "count": len(answer),
                "pairs": sorted(map(list, answer), key=repr)}


async def serve(root: str, host: str = "127.0.0.1", port: int = 8080,
                tokens: Optional[Dict[str, str]] = None,
                registry: Optional[GraphRegistry] = None,
                ready: Optional[Callable[[str, int], None]] = None,
                stop_event: Optional[asyncio.Event] = None,
                access_log: Optional[AccessLog] = None,
                **registry_options: Any) -> None:
    """Run the HTTP server until ``stop_event`` is set.

    ``ready(host, port)`` fires once the socket is bound (the CLI prints
    the endpoint; tests grab the ephemeral port).  Shutdown is graceful:
    stop accepting, drain in-flight queries, flush and close every store.
    """
    own_registry = registry is None
    if registry is None:
        registry = GraphRegistry(root, **registry_options)
    server = HttpServer(registry, tokens=tokens, access_log=access_log)
    bound_host, bound_port = await server.start(host=host, port=port)
    if ready is not None:
        ready(bound_host, bound_port)
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        if own_registry:
            await server.stop()
        else:
            server_only = server._server
            if server_only is not None:
                server_only.close()
                await server_only.wait_closed()
                server._server = None


async def serve_replica(directory: str, primary_url: str,
                        host: str = "127.0.0.1", port: int = 8080,
                        graph: Optional[str] = None,
                        tokens: Optional[Dict[str, str]] = None,
                        primary_token: Optional[str] = None,
                        poll_interval: float = 0.2,
                        ready: Optional[Callable[[str, int], None]] = None,
                        stop_event: Optional[asyncio.Event] = None,
                        access_log: Optional[AccessLog] = None,
                        seed: int = 0) -> None:
    """Run a tailing read replica of ``primary_url`` until stopped.

    Bootstraps ``directory`` from the primary's snapshot on first run
    (reopens and resumes from the local cursor afterwards), tails the
    WAL feed on a background thread over one keep-alive connection, and
    serves read-only queries throughout — including while catching up
    (``/readyz`` says so).  ``repro serve --replica-of URL`` lands here.
    """
    import threading

    from repro.replication import ReplicaGraph, ReplicaTailer
    from repro.service.client import RemoteFeed, ReproClient

    client = ReproClient(primary_url, token=primary_token,
                         keep_alive=True, jitter_seed=seed)
    source = RemoteFeed(client, graph=graph)
    loop = asyncio.get_running_loop()
    # Bootstrap blocks on the primary (snapshot fetch + CRC verify) —
    # run it off-loop so a primary served by this same loop (tests,
    # single-process demos) cannot deadlock it.
    if os.path.exists(os.path.join(directory, REPLICA_META_NAME)):
        replica = await loop.run_in_executor(None, ReplicaGraph.open,
                                             directory)
    else:
        replica = await loop.run_in_executor(
            None, lambda: ReplicaGraph.bootstrap(directory, source,
                                                 primary=primary_url))
    tailer = ReplicaTailer(replica, source, poll_interval=poll_interval,
                           seed=seed)
    tail_stop = threading.Event()
    tail_thread = threading.Thread(
        target=tailer.run, args=(tail_stop,),
        name="repro-replica-tail", daemon=True)
    tail_thread.start()
    server = ReplicaHttpServer(replica, tailer, tokens=tokens,
                               access_log=access_log)
    bound_host, bound_port = await server.start(host=host, port=port)
    if ready is not None:
        ready(bound_host, bound_port)
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        await server.stop()
        tail_stop.set()
        tail_thread.join(timeout=10.0)
        replica.close()
        client.close()
