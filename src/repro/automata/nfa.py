"""Thompson-construction NFA over edge-set alphabets (paper section IV-A).

The paper's automaton (Figure 1) transitions on **set membership**: a
transition is labeled with an edge set and fires for any input edge in that
set (footnote 9 notes this is shorthand for one classical transition per
member).  We keep the set-labeled form: a consuming transition carries a
*matcher* — either an :class:`AtomMatcher` wrapping a set-builder pattern or
an :class:`ExactMatcher` pinning one concrete edge (literals).

Join semantics live on the epsilon transitions.  The key observation (see
``docs/algebra.md``): for non-empty operands the join constraint
``gamma+(a) = gamma-(b)`` binds the *last edge consumed on the left* to the
*first edge consumed on the right* — two consecutive input edges — while an
epsilon operand imposes nothing.  The automaton therefore needs to know, at
each sequence boundary, whether the left operand actually consumed input.
Two mechanisms encode this exactly:

* every fragment has **two accept states** — ``accept_empty`` (the fragment
  matched epsilon) and ``accept_consumed`` (it consumed at least one edge);
  sequence boundaries leave from the right one;
* epsilon transitions carry one of three **kinds**: ``EPS_PLAIN`` preserves
  the adjacency-exemption flag, ``EPS_PRODUCT`` (a crossed ``x_o`` boundary
  after consumption) sets it, and ``EPS_JOIN`` (a crossed ``><_o`` boundary
  after consumption) clears it.  The flag is cleared by every consumption.

Without the accept split, ``E ><_o (eps x_o E)`` would wrongly exempt the
second edge from the *outer* join's adjacency (the product's left side
matched epsilon, so its boundary must impose — and waive — nothing); the
property tests caught exactly that, and
``tests/test_recognizer.py::TestJoinBoundaries`` pins the cases.

The construction duplicates the right operand of each sequence step (one
copy entered from ``accept_empty``, one from ``accept_consumed``), so flat
n-ary joins stay linear; only pathologically right-nested sequences grow
faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, NamedTuple, Sequence, Set, Tuple

from repro.core.edge import Edge
from repro.core.pathset import PathSet
from repro.errors import AutomatonError
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import (
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = [
    "AtomMatcher",
    "ExactMatcher",
    "NFA",
    "build_nfa",
    "EPS_PLAIN",
    "EPS_PRODUCT",
    "EPS_JOIN",
]

#: Epsilon kinds: preserve / set / clear the adjacency-exemption flag.
EPS_PLAIN = 0
EPS_PRODUCT = 1
EPS_JOIN = 2


@dataclass(frozen=True)
class AtomMatcher:
    """Transition label: a set-builder pattern (``[i, a, _]`` etc.)."""

    atom: Atom

    def matches(self, e: Edge, graph: MultiRelationalGraph) -> bool:
        """Membership of ``e`` in the pattern's edge set over ``graph``."""
        return self.atom.matches_edge(e, graph)

    def resolve(self, graph: MultiRelationalGraph) -> PathSet:
        """The pattern's edge set as length-1 paths (for the generator)."""
        return self.atom.resolve(graph)

    def candidate_edges(self, graph: MultiRelationalGraph,
                        from_vertex: Hashable) -> FrozenSet[Edge]:
        """Pattern edges whose tail is ``from_vertex`` — index-accelerated."""
        atom = self.atom
        if atom.tail is not None and atom.tail != from_vertex:
            return frozenset()
        return graph.match(tail=from_vertex, label=atom.label, head=atom.head)

    def all_edges(self, graph: MultiRelationalGraph) -> FrozenSet[Edge]:
        """All pattern edges over the graph."""
        return graph.match(tail=self.atom.tail, label=self.atom.label,
                           head=self.atom.head)

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class ExactMatcher:
    """Transition label: one pinned concrete edge (from a Literal path).

    Graph-independent: literals match whether or not the edge exists in the
    queried graph, exactly like the AST's :class:`Literal` semantics.
    """

    edge: Edge

    def matches(self, e: Edge, graph: MultiRelationalGraph) -> bool:
        """Exact equality with the pinned edge."""
        return e == self.edge

    def resolve(self, graph: MultiRelationalGraph) -> PathSet:
        """The singleton path set of the pinned edge."""
        return PathSet([self.edge])

    def candidate_edges(self, graph: MultiRelationalGraph,
                        from_vertex: Hashable) -> FrozenSet[Edge]:
        """The pinned edge when its tail matches, else nothing."""
        if self.edge.tail == from_vertex:
            return frozenset([self.edge])
        return frozenset()

    def all_edges(self, graph: MultiRelationalGraph) -> FrozenSet[Edge]:
        """The singleton set of the pinned edge."""
        return frozenset([self.edge])

    def __str__(self) -> str:
        return "{{{!r}}}".format(self.edge)


class _Fragment(NamedTuple):
    """A sub-automaton with split accepts (empty-match vs consumed-match)."""

    start: int
    accept_empty: int
    accept_consumed: int


class NFA:
    """A non-deterministic finite automaton over edge sets.

    States are integers with a single ``start`` and a single ``accept``
    (the two internal accepts of the root fragment are funnelled into one).
    ``epsilon[q]`` lists ``(target, kind)`` silent moves with kind in
    {:data:`EPS_PLAIN`, :data:`EPS_PRODUCT`, :data:`EPS_JOIN`};
    ``consuming[q]`` lists ``(matcher, target)`` input moves.
    """

    def __init__(self) -> None:
        self.num_states = 0
        self.start = 0
        self.accept = 0
        self.epsilon: List[List[Tuple[int, int]]] = []
        self.consuming: List[List[Tuple[object, int]]] = []

    def new_state(self) -> int:
        """Allocate a fresh state id."""
        state = self.num_states
        self.num_states += 1
        self.epsilon.append([])
        self.consuming.append([])
        return state

    def add_epsilon(self, source: int, target: int, kind: int = EPS_PLAIN) -> None:
        """Add a silent move of the given kind."""
        self.epsilon[source].append((target, kind))

    def add_consuming(self, source: int, matcher: Any, target: int) -> None:
        """Add an input move labeled with an edge-set matcher."""
        self.consuming[source].append((matcher, target))

    # ------------------------------------------------------------------

    def closure(self, seeds: Dict[int, bool]) -> Dict[int, bool]:
        """Epsilon closure over ``state -> exempt`` configurations.

        ``exempt`` records whether the next consumed edge skips the
        adjacency check.  Plain epsilons preserve the flag, product
        boundaries set it, join boundaries clear it.  ``exempt=True``
        strictly dominates (it admits a superset of edges), so each state
        keeps the maximum.
        """
        result: Dict[int, bool] = dict(seeds)
        stack = list(seeds.items())
        while stack:
            state, exempt = stack.pop()
            for target, kind in self.epsilon[state]:
                if kind == EPS_PRODUCT:
                    new_exempt = True
                elif kind == EPS_JOIN:
                    new_exempt = False
                else:
                    new_exempt = exempt
                if target not in result or (new_exempt and not result[target]):
                    result[target] = new_exempt
                    stack.append((target, new_exempt))
        return result

    def alive_states(self) -> Set[int]:
        """States on some start-to-accept route (for diagnostics/pruning)."""
        forward = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            targets = [t for t, _ in self.epsilon[state]]
            targets += [t for _, t in self.consuming[state]]
            for target in targets:
                if target not in forward:
                    forward.add(target)
                    stack.append(target)
        reverse: Dict[int, List[int]] = {s: [] for s in range(self.num_states)}
        for source in range(self.num_states):
            for target, _ in self.epsilon[source]:
                reverse[target].append(source)
            for _, target in self.consuming[source]:
                reverse[target].append(source)
        backward = {self.accept}
        stack = [self.accept]
        while stack:
            state = stack.pop()
            for source in reverse[state]:
                if source not in backward:
                    backward.add(source)
                    stack.append(source)
        return forward & backward

    def transition_count(self) -> int:
        """Total number of transitions (epsilon + consuming)."""
        return (sum(len(moves) for moves in self.epsilon)
                + sum(len(moves) for moves in self.consuming))

    def __repr__(self) -> str:
        return "NFA<{} states, {} transitions>".format(
            self.num_states, self.transition_count())


def build_nfa(expression: RegexExpr) -> NFA:
    """Compile a regular path expression into an :class:`NFA`.

    :class:`Repeat` nodes are expanded into the primitive operators first,
    so the construction only sees union/join/product/star/atoms/literals.
    """
    nfa = NFA()
    fragment = _build(nfa, expression)
    accept = nfa.new_state()
    nfa.add_epsilon(fragment.accept_empty, accept)
    nfa.add_epsilon(fragment.accept_consumed, accept)
    nfa.start = fragment.start
    nfa.accept = accept
    return nfa


def _build(nfa: NFA, expr: RegexExpr) -> _Fragment:
    """Recursive construction; returns the fragment's split-accept triple."""
    if isinstance(expr, Empty):
        return _Fragment(nfa.new_state(), nfa.new_state(), nfa.new_state())
    if isinstance(expr, Epsilon):
        start = nfa.new_state()
        accept_empty = nfa.new_state()
        nfa.add_epsilon(start, accept_empty)
        return _Fragment(start, accept_empty, nfa.new_state())
    if isinstance(expr, Atom):
        start = nfa.new_state()
        accept_consumed = nfa.new_state()
        nfa.add_consuming(start, AtomMatcher(expr), accept_consumed)
        return _Fragment(start, nfa.new_state(), accept_consumed)
    if isinstance(expr, Literal):
        return _build_literal(nfa, expr)
    if isinstance(expr, Union):
        start = nfa.new_state()
        accept_empty = nfa.new_state()
        accept_consumed = nfa.new_state()
        for part in expr.parts:
            fragment = _build(nfa, part)
            nfa.add_epsilon(start, fragment.start)
            nfa.add_epsilon(fragment.accept_empty, accept_empty)
            nfa.add_epsilon(fragment.accept_consumed, accept_consumed)
        return _Fragment(start, accept_empty, accept_consumed)
    if isinstance(expr, Join):
        return _build_sequence(nfa, expr.parts, boundary=EPS_JOIN)
    if isinstance(expr, Product):
        return _build_sequence(nfa, expr.parts, boundary=EPS_PRODUCT)
    if isinstance(expr, Star):
        return _build_star(nfa, expr.inner)
    if isinstance(expr, Repeat):
        return _build(nfa, expr.expand())
    raise AutomatonError("cannot compile unknown node {!r}".format(expr))


def _build_sequence(nfa: NFA, parts: Sequence[RegexExpr], boundary: int) -> _Fragment:
    """Left-fold a sequence, duplicating each right operand per entry route.

    From ``accept_empty`` of the accumulated left (it matched epsilon so
    the boundary imposes nothing) the next part is entered by a *plain*
    epsilon; from ``accept_consumed`` by the marked boundary epsilon
    (join clears the exemption flag, product sets it).
    """
    fragment = _build(nfa, parts[0])
    for part in parts[1:]:
        entered_empty = _build(nfa, part)     # left matched epsilon
        entered_consumed = _build(nfa, part)  # left consumed >= 1 edge
        nfa.add_epsilon(fragment.accept_empty, entered_empty.start, EPS_PLAIN)
        nfa.add_epsilon(fragment.accept_consumed, entered_consumed.start,
                        boundary)
        accept_empty = nfa.new_state()
        accept_consumed = nfa.new_state()
        nfa.add_epsilon(entered_empty.accept_empty, accept_empty)
        nfa.add_epsilon(entered_empty.accept_consumed, accept_consumed)
        nfa.add_epsilon(entered_consumed.accept_empty, accept_consumed)
        nfa.add_epsilon(entered_consumed.accept_consumed, accept_consumed)
        fragment = _Fragment(fragment.start, accept_empty, accept_consumed)
    return fragment


def _build_star(nfa: NFA, inner: RegexExpr) -> _Fragment:
    """Star with join-repetition semantics and correct empty accounting.

    Two copies of the body: the first repetition (whose empty match means
    the whole star matched epsilon) and the looping repetition (entered
    only after consumption, via a flag-clearing join epsilon — repetitions
    of a star must be adjacent).
    """
    start = nfa.new_state()
    accept_empty = nfa.new_state()
    accept_consumed = nfa.new_state()
    first = _build(nfa, inner)
    looper = _build(nfa, inner)
    nfa.add_epsilon(start, accept_empty)              # zero repetitions
    nfa.add_epsilon(start, first.start)
    nfa.add_epsilon(first.accept_empty, accept_empty)  # first rep empty
    nfa.add_epsilon(first.accept_consumed, accept_consumed)
    nfa.add_epsilon(first.accept_consumed, looper.start, EPS_JOIN)
    nfa.add_epsilon(looper.accept_consumed, looper.start, EPS_JOIN)
    nfa.add_epsilon(looper.accept_consumed, accept_consumed)
    # A later empty repetition adds nothing but remains an accept route.
    nfa.add_epsilon(looper.accept_empty, accept_consumed)
    return _Fragment(start, accept_empty, accept_consumed)


def _build_literal(nfa: NFA, expr: Literal) -> _Fragment:
    """One branch per literal path; multi-edge paths become pinned chains.

    Boundaries inside a pinned chain are product-marked: the literal's path
    is accepted exactly as written, joint or not — the exact matchers
    already pin the structure, so adjacency re-checking would only wrongly
    reject deliberately disjoint literal paths.
    """
    start = nfa.new_state()
    accept_empty = nfa.new_state()
    accept_consumed = nfa.new_state()
    for path in expr.path_set:
        if not path:
            nfa.add_epsilon(start, accept_empty)
            continue
        current = start
        for index, e in enumerate(path):
            nxt = nfa.new_state()
            if index > 0:
                bridge = nfa.new_state()
                nfa.add_epsilon(current, bridge, EPS_PRODUCT)
                current = bridge
            nfa.add_consuming(current, ExactMatcher(e), nxt)
            current = nxt
        nfa.add_epsilon(current, accept_consumed)
    return _Fragment(start, accept_empty, accept_consumed)
