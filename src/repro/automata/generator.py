"""The regular path generator (paper section IV-B).

Section IV-B generates — rather than recognizes — all paths of a graph
matching a regular expression, using "a non-deterministic single-stack
automaton with a stack alphabet of ``P(E*)``": every automaton branch keeps
a path-set on its stack, and each state transition pops the set, joins it on
the right with the transition label's edge set, and pushes the result;
branches halt on the empty set or at accept states, and the union of
accept-branch stacks is the answer.

Two implementations live here:

* :class:`StackAutomaton` — the paper's construction *verbatim*: breadth-
  first over ``(state, stack)`` configurations with whole path-sets on the
  stack.  Kept primarily for fidelity and cross-validation.
* :func:`generate_paths` — the production generator: the same search with
  **per-path** configurations ``(state, path, exempt)``, which dedupes at
  much finer grain and exploits the graph's tail index to extend paths
  (each join step only touches edges adjacent to the path's head).

Both are bounded by ``max_length`` because a Kleene star over any graph
cycle denotes infinitely many paths; the bound truncates by path length,
matching :func:`repro.regex.ast.evaluate`'s reference semantics (the
property tests assert exact agreement).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.core.path import EPSILON, Path
from repro.core.pathset import PathSet
from repro.errors import AutomatonError
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import RegexExpr
from repro.automata.nfa import NFA, build_nfa

__all__ = ["generate_paths", "StackAutomaton"]


def generate_paths(graph: MultiRelationalGraph, expression: RegexExpr,
                   max_length: int,
                   first_edge_tails: Optional[frozenset] = None) -> PathSet:
    """All paths of ``graph`` (length <= ``max_length``) matching ``expression``.

    The workhorse regular-path-query evaluator: a product construction
    between the expression's NFA and the graph, searched breadth-first.
    Configurations carry the concrete path built so far plus the adjacency
    exemption flag (see :mod:`repro.automata.recognizer` for the flag's
    semantics).

    ``first_edge_tails`` restricts only the *initial* expansion: non-empty
    results keep exactly the paths whose first edge starts in the set
    (later expansions — adjacency-driven or product-exempt — are never
    filtered).  Every path has a unique first edge, so disjoint tail sets
    partition the full result set; the parallel executor fans the sweep
    out over such partitions and unions the path sets back together.
    """
    if max_length < 0:
        raise AutomatonError("max_length must be >= 0")
    nfa = build_nfa(expression)
    accepted: Set[Path] = set()
    # Configuration: (state, path, exempt). Seed with epsilon at the start.
    seen: Set[Tuple[int, Path, bool]] = set()
    queue: deque = deque()

    def push_closure(state: int, path: Path, exempt: bool) -> None:
        for closed_state, closed_exempt in nfa.closure({state: exempt}).items():
            config = (closed_state, path, closed_exempt)
            if config in seen:
                continue
            seen.add(config)
            if closed_state == nfa.accept:
                accepted.add(path)
            queue.append(config)

    push_closure(nfa.start, EPSILON, False)
    while queue:
        state, path, exempt = queue.popleft()
        if len(path) >= max_length:
            continue
        for matcher, target in nfa.consuming[state]:
            if path and not exempt:
                candidates = matcher.candidate_edges(graph, path.head)
            else:
                candidates = matcher.all_edges(graph)
            if first_edge_tails is not None and not path:
                candidates = [e for e in candidates
                              if e.tail in first_edge_tails]
            for e in candidates:
                push_closure(target, path.concat(Path((e,))), False)
    return PathSet(accepted)


class StackAutomaton:
    """The paper's section IV-B construction, followed to the letter.

    The automaton's configurations are ``(state, path_set, exempt)``; the
    initial stack holds ``{epsilon}``; each transition performs
    ``pop(); push(popped ><_o label_set)`` (or ``x_o`` across a product
    boundary); a branch halts when its set is empty; the result is the union
    of the sets held at accept states.

    Whole-set configurations blow up combinatorially compared to the
    per-path search, which is exactly the comparison benchmark E2 runs.
    """

    def __init__(self, expression: RegexExpr, graph: MultiRelationalGraph):
        self.graph = graph
        self.expression = expression
        self.nfa: NFA = build_nfa(expression)

    def run(self, max_length: int) -> PathSet:
        """Execute all branches "in parallel"; return the accepted union."""
        if max_length < 0:
            raise AutomatonError("max_length must be >= 0")
        nfa = self.nfa
        result = PathSet.empty()
        seen: Set[Tuple[int, PathSet, bool]] = set()
        queue: deque = deque()

        def push_closure(state: int, stack_top: PathSet, exempt: bool) -> None:
            nonlocal result
            for closed_state, closed_exempt in nfa.closure({state: exempt}).items():
                config = (closed_state, stack_top, closed_exempt)
                if config in seen:
                    continue
                seen.add(config)
                if closed_state == nfa.accept:
                    result = result | stack_top
                queue.append(config)

        push_closure(nfa.start, PathSet.epsilon(), False)
        while queue:
            state, stack_top, exempt = queue.popleft()
            for matcher, target in nfa.consuming[state]:
                label_set = matcher.resolve(self.graph)
                if exempt:
                    grown = stack_top.product(label_set)
                else:
                    grown = stack_top.join(label_set)
                bounded = PathSet(p for p in grown.paths if len(p) <= max_length)
                if not bounded:
                    # The paper: a branch whose stack element is the empty
                    # set halts.
                    continue
                push_closure(target, bounded, False)
        return result

    def __repr__(self) -> str:
        return "StackAutomaton<{} over {!r}>".format(
            self.nfa, self.graph.name or "graph")
