"""The regular path recognizer (paper section IV-A).

Recognition decides whether a given path (a string over ``E``) is in the
language of a regular path expression evaluated over a graph.  The engine is
the Thompson NFA from :mod:`repro.automata.nfa`, simulated with the standard
subset construction on-the-fly, extended with one bit per configuration: the
*adjacency exemption* flag.

Why this is faithful to the paper's semantics: the join constraint
``gamma+(a) = gamma-(b)`` on non-empty operands is precisely a constraint
between the last edge consumed on the left and the first edge consumed on
the right — two *consecutive* input edges.  So recognition reduces to
(1) per-edge set membership (footnote 9's transition function) and
(2) consecutive-edge adjacency, waived exactly when a product boundary
(``x_o``) was crossed between the two consumptions.  Epsilon operands impose
nothing, which the flag machinery inherits for free because no consumption
happens inside them.

:class:`Recognizer` precompiles the expression once and answers many path
queries; :func:`recognizes` is the one-shot convenience.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.path import Path
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import RegexExpr
from repro.automata.nfa import NFA, build_nfa

__all__ = ["Recognizer", "recognizes"]


class Recognizer:
    """A compiled regular path expression, reusable across many inputs.

    Examples
    --------
    >>> from repro.datasets import figure1_graph, figure1_expression
    >>> g = figure1_graph()
    >>> r = Recognizer(figure1_expression(), g)
    >>> r.accepts(Path.of(("i", "alpha", "m"), ("m", "alpha", "k")))
    True
    """

    def __init__(self, expression: RegexExpr, graph: MultiRelationalGraph):
        self.expression = expression
        self.graph = graph
        self.nfa: NFA = build_nfa(expression)

    def accepts(self, path: Path) -> bool:
        """True when ``path`` is recognized.

        Runs the flagged subset simulation: configurations are
        ``state -> exempt`` maps, advanced per input edge; acceptance is
        reaching the accept state after the last edge.
        """
        path = path if isinstance(path, Path) else Path(path)
        current: Dict[int, bool] = self.nfa.closure({self.nfa.start: False})
        previous_head: Optional[object] = None
        for e in path:
            frontier: Dict[int, bool] = {}
            for state, exempt in current.items():
                for matcher, target in self.nfa.consuming[state]:
                    if not matcher.matches(e, self.graph):
                        continue
                    if (previous_head is not None and not exempt
                            and e.tail != previous_head):
                        continue
                    # Consumption resets the exemption.
                    if target not in frontier:
                        frontier[target] = False
            if not frontier:
                return False
            current = self.nfa.closure(frontier)
            previous_head = e.head
        return self.nfa.accept in current

    def rejects(self, path: Path) -> bool:
        """Convenience negation of :meth:`accepts`."""
        return not self.accepts(path)

    def accepting_subset(self, paths: Iterable[Path]) -> List[Path]:
        """The accepted members of an iterable of paths (stable order)."""
        return [p for p in paths if self.accepts(p)]

    def __repr__(self) -> str:
        return "Recognizer<{} over {!r}>".format(self.nfa, self.graph.name or "graph")


def recognizes(expression: RegexExpr, path: Path,
               graph: MultiRelationalGraph) -> bool:
    """One-shot recognition: compile, run, answer."""
    return Recognizer(expression, graph).accepts(path)
