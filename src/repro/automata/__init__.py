"""Automata over edge-set alphabets: recognition and generation (section IV).

* :func:`build_nfa` — Thompson construction from a regex AST,
* :class:`Recognizer` / :func:`recognizes` — section IV-A membership,
* :func:`generate_paths` — the production regular path query evaluator,
* :class:`StackAutomaton` — the paper's section IV-B single-stack automaton,
  implemented verbatim for fidelity and cross-validation.
"""

from repro.automata.nfa import NFA, AtomMatcher, ExactMatcher, build_nfa
from repro.automata.recognizer import Recognizer, recognizes
from repro.automata.generator import StackAutomaton, generate_paths

__all__ = [
    "NFA",
    "AtomMatcher",
    "ExactMatcher",
    "build_nfa",
    "Recognizer",
    "recognizes",
    "StackAutomaton",
    "generate_paths",
]
