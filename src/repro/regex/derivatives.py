"""Brzozowski derivatives for regular path expressions.

An independent recognition method: the derivative of an expression with
respect to an edge ``e`` is the expression matching exactly the suffixes of
strings that started with ``e``.  A path is matched when, after deriving by
each of its edges in turn, the residual expression is nullable.

The subtlety relative to classical word derivatives is the **join
constraint**: crossing a ``><_o`` boundary after having consumed edges on the
left requires the next consumed edge to be adjacent (``gamma+`` of the
previous edge equals ``gamma-`` of the next), while crossing a ``x_o``
boundary exempts it, and crossing either boundary *without* having consumed
anything inherits the enclosing context's requirement.  We encode this with
a private residual node :class:`_Seq` that records, for sequences produced
*after* consumption, whether their crossing demands adjacency — pristine
``Join``/``Product`` nodes inherit the outer requirement instead.

The derivative matcher, the NFA recognizer (:mod:`repro.automata`) and the
direct evaluator (:func:`repro.regex.ast.evaluate`) are three independent
implementations of one semantics; the property-based tests triangulate them.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.core.edge import Edge
from repro.core.path import Path
from repro.errors import RegexError
from repro.graph.graph import MultiRelationalGraph
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = ["derive", "matches"]


class _Seq(RegexExpr):
    """Residual sequence ``left ; right`` with a *determined* crossing rule.

    ``require_adjacent`` is True when this sequence arose from a join whose
    left side already consumed an edge (so handing over to ``right`` demands
    adjacency) and False for the product counterpart (handover exempt).
    """

    __slots__ = ("left", "right", "require_adjacent")

    def __init__(self, left: RegexExpr, right: RegexExpr, require_adjacent: bool):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "require_adjacent", require_adjacent)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("_Seq is immutable")

    @property
    def nullable(self) -> bool:
        return self.left.nullable and self.right.nullable

    def children(self) -> Tuple[RegexExpr, ...]:
        return (self.left, self.right)

    def _key(self) -> Hashable:
        return (self.left, self.right, self.require_adjacent)

    def __repr__(self) -> str:
        return "_Seq({!r}, {!r}, {})".format(self.left, self.right, self.require_adjacent)


class _ExactSuffix(RegexExpr):
    """Residual of a multi-edge :class:`Literal` path: the pinned remaining edges.

    Each remaining edge must be matched *exactly*, with no adjacency checks —
    the literal's path is accepted verbatim, joint or not.
    """

    __slots__ = ("remaining",)

    def __init__(self, remaining: Path):
        object.__setattr__(self, "remaining", remaining)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("_ExactSuffix is immutable")

    @property
    def nullable(self) -> bool:
        return len(self.remaining) == 0

    def _key(self) -> Hashable:
        return (self.remaining,)

    def __repr__(self) -> str:
        return "_ExactSuffix({!r})".format(self.remaining)


def _seq(left: RegexExpr, right: RegexExpr, require_adjacent: bool) -> RegexExpr:
    """Smart constructor for residual sequences (applies zero/identity laws)."""
    if isinstance(left, Empty) or isinstance(right, Empty):
        return EMPTY
    if isinstance(left, Epsilon):
        # An epsilon left with a recorded crossing still demands the crossing
        # rule for right's first edge, so only drop it when rule-free passage
        # is equivalent: it is not, keep the node unless right is epsilon.
        if isinstance(right, Epsilon):
            return EPSILON
        return _Seq(left, right, require_adjacent)
    if isinstance(right, Epsilon):
        return left
    return _Seq(left, right, require_adjacent)


def _union(*parts: RegexExpr) -> RegexExpr:
    kept = []
    for part in parts:
        if isinstance(part, Empty):
            continue
        if part not in kept:
            kept.append(part)
    if not kept:
        return EMPTY
    if len(kept) == 1:
        return kept[0]
    return Union(tuple(kept))


def derive(expression: RegexExpr, e: Edge, graph: MultiRelationalGraph,
           previous_head: Optional[Hashable] = None,
           required: bool = True) -> RegexExpr:
    """The derivative of ``expression`` with respect to consuming edge ``e``.

    ``previous_head`` is ``gamma+`` of the previously consumed edge (``None``
    at the start of input); ``required`` states whether the *enclosing*
    context demands ``e`` be adjacent to it.  Callers normally use
    :func:`matches` instead of driving this directly.
    """
    expr = expression
    if isinstance(expr, (Empty, Epsilon)):
        return EMPTY
    if isinstance(expr, Atom):
        if not expr.matches_edge(e, graph):
            return EMPTY
        if required and previous_head is not None and e.tail != previous_head:
            return EMPTY
        return EPSILON
    if isinstance(expr, Literal):
        branches = []
        for p in expr.path_set:
            if not p or p[0] != e:
                continue
            if required and previous_head is not None and e.tail != previous_head:
                continue
            rest = p[1:]
            branches.append(EPSILON if not rest else _ExactSuffix(rest))
        return _union(*branches)
    if isinstance(expr, _ExactSuffix):
        remaining = expr.remaining
        if not remaining or remaining[0] != e:
            return EMPTY
        # Pinned suffix edges never check adjacency: the literal path is
        # accepted exactly as written.
        rest = remaining[1:]
        return EPSILON if not rest else _ExactSuffix(rest)
    if isinstance(expr, Union):
        return _union(*(derive(p, e, graph, previous_head, required)
                        for p in expr.parts))
    if isinstance(expr, Join):
        left, right = _split(expr, Join)
        branches = [_seq(derive(left, e, graph, previous_head, required),
                         right, require_adjacent=True)]
        if left.nullable:
            # Left matched epsilon (consumed nothing here), so the crossing
            # imposes nothing: right's first edge inherits the outer rule.
            branches.append(derive(right, e, graph, previous_head, required))
        return _union(*branches)
    if isinstance(expr, Product):
        left, right = _split(expr, Product)
        branches = [_seq(derive(left, e, graph, previous_head, required),
                         right, require_adjacent=False)]
        if left.nullable:
            branches.append(derive(right, e, graph, previous_head, required))
        return _union(*branches)
    if isinstance(expr, _Seq):
        branches = [_seq(derive(expr.left, e, graph, previous_head, required),
                         expr.right, expr.require_adjacent)]
        if expr.left.nullable:
            # The crossing rule was determined when this residual was built.
            branches.append(derive(expr.right, e, graph, previous_head,
                                   required=expr.require_adjacent))
        return _union(*branches)
    if isinstance(expr, Star):
        inner = derive(expr.inner, e, graph, previous_head, required)
        # Star repetitions are join-repetitions: after consuming within one
        # copy, re-entry into the next copy demands adjacency.
        return _seq(inner, expr, require_adjacent=True)
    if isinstance(expr, Repeat):
        return derive(expr.expand(), e, graph, previous_head, required)
    raise RegexError("cannot derive unknown node {!r}".format(expr))


def _split(expr: RegexExpr, node_type: type) -> Tuple[RegexExpr, RegexExpr]:
    """Split an n-ary Join/Product into (first, rest-of-same-type)."""
    parts = expr.parts
    if len(parts) == 1:
        return parts[0], EPSILON
    if len(parts) == 2:
        return parts[0], parts[1]
    return parts[0], node_type(parts[1:])


def matches(expression: RegexExpr, path: Path,
            graph: MultiRelationalGraph) -> bool:
    """True when ``path`` is in the language of ``expression`` over ``graph``.

    Derivative-based: derive by each edge in turn, then test nullability.
    """
    current = expression
    previous_head: Optional[Hashable] = None
    for e in path:
        current = derive(current, e, graph, previous_head, required=True)
        if isinstance(current, Empty):
            return False
        previous_head = e.head
    return current.nullable
