"""Regular path expressions over the edge alphabet ``E`` (section IV-A).

The paper defines regular expressions whose alphabet is the *edge set*
(not the label set, which is reference [8]'s setting): the empty expression,
epsilon, and any edge set are regular; and closure under union ``U``,
concatenative join ``><_o``, and Kleene star ``*``.  Footnote 8 adds the
derived forms ``R+ = R ><_o R*``, ``R? = R U {eps}``, ``R^n``.  The
concatenative product ``x_o`` may replace the join to admit disjoint paths
(footnote 7).

Atoms come in two shapes, matching the paper's set-builder notation:

* :class:`Atom` — a **pattern** ``[tail, label, head]`` with ``None`` as the
  underscore wildcard; resolved against a graph at evaluation time.
* :class:`Literal` — an **explicit** path set like ``{(j, a, i)}``.

Expressions are immutable, hashable, comparable trees.  Python operators
mirror the algebra: ``r | q`` (union), ``r @ q`` (join), ``r * q``
(product), ``r.star()``, ``r.plus()``, ``r.optional()``, ``r ** n``.

:func:`evaluate` is the direct structural evaluator (the semantics);
:mod:`repro.automata` provides the equivalent automaton-based recognizer and
generator, and the test suite property-checks the two against each other.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.core.edge import Edge
from repro.core.path import Path
from repro.core.pathset import PathSet
from repro.errors import RegexError
from repro.graph.graph import MultiRelationalGraph

__all__ = [
    "RegexExpr",
    "Empty",
    "Epsilon",
    "Atom",
    "Literal",
    "Union",
    "Join",
    "Product",
    "Star",
    "Repeat",
    "EMPTY",
    "EPSILON",
    "evaluate",
]


class RegexExpr:
    """Base class for regular path expression nodes.

    Subclasses are value objects: construction normalizes nothing (use
    :meth:`simplified` for algebraic normalization), equality is structural.
    """

    __slots__ = ()

    # -- pickling ---------------------------------------------------------
    # Nodes are slot-based and guard mutation with a raising __setattr__,
    # which also breaks pickle's default state restore.  Spell the state
    # protocol out through object.__setattr__ (the same side door the
    # constructors use) so expressions can cross process boundaries — the
    # parallel executor ships them to its workers.

    def __getstate__(self) -> Dict[str, object]:
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    # -- algebra operators ------------------------------------------------

    def __or__(self, other: "RegexExpr") -> "RegexExpr":
        return Union((self, _check_expr(other)))

    def __matmul__(self, other: "RegexExpr") -> "RegexExpr":
        return Join((self, _check_expr(other)))

    def __mul__(self, other: "RegexExpr") -> "RegexExpr":
        return Product((self, _check_expr(other)))

    def __pow__(self, n: int) -> "RegexExpr":
        if not isinstance(n, int) or n < 0:
            raise RegexError("R ** n requires an integer n >= 0")
        return Repeat(self, n, n)

    def star(self) -> "RegexExpr":
        """Kleene star ``R*`` (zero or more join-repetitions)."""
        return Star(self)

    def plus(self) -> "RegexExpr":
        """``R+ = R ><_o R*`` (footnote 8)."""
        return Repeat(self, 1, None)

    def optional(self) -> "RegexExpr":
        """``R? = R U {eps}`` (footnote 8)."""
        return Repeat(self, 0, 1)

    def repeat(self, minimum: int, maximum: Optional[int]) -> "RegexExpr":
        """Bounded repetition ``R{min,max}`` (``max=None`` for unbounded)."""
        return Repeat(self, minimum, maximum)

    # -- structural protocol ----------------------------------------------

    def children(self) -> Tuple["RegexExpr", ...]:
        """Immediate sub-expressions."""
        return ()

    @property
    def nullable(self) -> bool:
        """True when epsilon is in the expression's language."""
        raise NotImplementedError

    def simplified(self) -> "RegexExpr":
        """An algebraically simplified equivalent expression.

        Applies: identity/zero laws of union and join, flattening and
        deduplication of unions, flattening of joins/products, star
        idempotence (``(R*)* = R*``), ``{}* = eps* = eps``, and collapse of
        trivial repeats.
        """
        return self

    def size(self) -> int:
        """Number of nodes in the expression tree."""
        return 1 + sum(child.size() for child in self.children())

    def depth(self) -> int:
        """Height of the expression tree."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def atoms(self) -> Tuple["RegexExpr", ...]:
        """All Atom/Literal leaves, left to right (with repetition)."""
        if isinstance(self, (Atom, Literal)):
            return (self,)
        out: Tuple[RegexExpr, ...] = ()
        for child in self.children():
            out += child.atoms()
        return out

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Hashable:
        raise NotImplementedError


def _check_expr(value: object) -> "RegexExpr":
    if not isinstance(value, RegexExpr):
        raise RegexError(
            "expected a regular path expression, got {!r}".format(value))
    return value


class Empty(RegexExpr):
    """The empty language ``{}`` — matches no path at all."""

    __slots__ = ()

    @property
    def nullable(self) -> bool:
        return False

    def _key(self) -> Hashable:
        return ()

    def __repr__(self) -> str:
        return "Empty()"

    def __str__(self) -> str:
        return "{}"


class Epsilon(RegexExpr):
    """The language ``{eps}`` — matches exactly the empty path."""

    __slots__ = ()

    @property
    def nullable(self) -> bool:
        return True

    def _key(self) -> Hashable:
        return ()

    def __repr__(self) -> str:
        return "Epsilon()"

    def __str__(self) -> str:
        return "eps"


class Atom(RegexExpr):
    """A set-builder pattern ``[tail, label, head]`` with ``None`` wildcards.

    ``Atom()`` is ``[_, _, _] = E``; ``Atom(label="a")`` is ``[_, a, _]``;
    etc.  Matches exactly the length-1 paths whose edge satisfies the
    pattern in the graph being queried.
    """

    __slots__ = ("tail", "label", "head")

    def __init__(self, tail: Optional[Hashable] = None,
                 label: Optional[Hashable] = None,
                 head: Optional[Hashable] = None):
        object.__setattr__(self, "tail", tail)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "head", head)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    @property
    def nullable(self) -> bool:
        return False

    def resolve(self, graph: MultiRelationalGraph) -> PathSet:
        """The pattern's edge set in ``graph``, as length-1 paths."""
        return graph.edges(tail=self.tail, label=self.label, head=self.head)

    def matches_edge(self, e: Edge, graph: MultiRelationalGraph) -> bool:
        """Membership test for one edge (the automaton's transition function)."""
        if self.tail is not None and e.tail != self.tail:
            return False
        if self.label is not None and e.label != self.label:
            return False
        if self.head is not None and e.head != self.head:
            return False
        return graph.has_edge(e.tail, e.label, e.head)

    def _key(self) -> Hashable:
        return (self.tail, self.label, self.head)

    def __repr__(self) -> str:
        return "Atom(tail={!r}, label={!r}, head={!r})".format(
            self.tail, self.label, self.head)

    def __str__(self) -> str:
        def show(part: Optional[Hashable]) -> str:
            return "_" if part is None else str(part)
        return "[{}, {}, {}]".format(show(self.tail), show(self.label), show(self.head))


class Literal(RegexExpr):
    """An explicit path set, e.g. the paper's ``{(j, a, i)}``.

    Unlike :class:`Atom`, a literal is graph-independent: it matches its
    paths whether or not they exist in the queried graph (the generator
    intersects with graph paths implicitly because joins only extend with
    the literal's own content; the recognizer checks raw equality).
    Multi-edge paths are allowed.
    """

    __slots__ = ("path_set",)

    def __init__(self, paths: Iterable):
        object.__setattr__(self, "path_set",
                           paths if isinstance(paths, PathSet) else PathSet(paths))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    @property
    def nullable(self) -> bool:
        return Path() in self.path_set

    def resolve(self, graph: MultiRelationalGraph) -> PathSet:
        """The literal's own path set (graph-independent)."""
        return self.path_set

    def _key(self) -> Hashable:
        return self.path_set

    def __repr__(self) -> str:
        return "Literal({!r})".format(self.path_set)

    def __str__(self) -> str:
        return "{" + ", ".join(str(p) for p in self.path_set) + "}"


class _Nary(RegexExpr):
    """Shared machinery for Union/Join/Product."""

    __slots__ = ("parts",)
    _symbol = "?"

    def __init__(self, parts: Iterable[RegexExpr]):
        normalized = tuple(_check_expr(p) for p in parts)
        if len(normalized) < 1:
            raise RegexError("{} needs at least one operand".format(type(self).__name__))
        object.__setattr__(self, "parts", normalized)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("regex nodes are immutable")

    def children(self) -> Tuple[RegexExpr, ...]:
        return self.parts

    def _key(self) -> Hashable:
        return self.parts

    def __repr__(self) -> str:
        return "{}({!r})".format(type(self).__name__, list(self.parts))

    def __str__(self) -> str:
        return "(" + (" " + self._symbol + " ").join(str(p) for p in self.parts) + ")"


class Union(_Nary):
    """``R U Q`` — set union of path languages."""

    __slots__ = ()
    _symbol = "|"

    @property
    def nullable(self) -> bool:
        return any(p.nullable for p in self.parts)

    def simplified(self) -> RegexExpr:
        flat = []
        for part in self.parts:
            part = part.simplified()
            if isinstance(part, Union):
                flat.extend(part.parts)
            elif isinstance(part, Empty):
                continue
            else:
                flat.append(part)
        unique = []
        for part in flat:
            if part not in unique:
                unique.append(part)
        if not unique:
            return EMPTY
        if len(unique) == 1:
            return unique[0]
        return Union(tuple(unique))


class Join(_Nary):
    """``R ><_o Q`` — concatenative join: only joint concatenations survive."""

    __slots__ = ()
    _symbol = "."

    @property
    def nullable(self) -> bool:
        return all(p.nullable for p in self.parts)

    def simplified(self) -> RegexExpr:
        flat = []
        for part in self.parts:
            part = part.simplified()
            if isinstance(part, Empty):
                return EMPTY
            if isinstance(part, Epsilon):
                continue
            if isinstance(part, Join):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            return EPSILON
        if len(flat) == 1:
            return flat[0]
        return Join(tuple(flat))


class Product(_Nary):
    """``R x_o Q`` — concatenative product: disjoint concatenations allowed."""

    __slots__ = ()
    _symbol = "x"

    @property
    def nullable(self) -> bool:
        return all(p.nullable for p in self.parts)

    def simplified(self) -> RegexExpr:
        flat = []
        for part in self.parts:
            part = part.simplified()
            if isinstance(part, Empty):
                return EMPTY
            if isinstance(part, Epsilon):
                continue
            if isinstance(part, Product):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            return EPSILON
        if len(flat) == 1:
            return flat[0]
        return Product(tuple(flat))


class Star(RegexExpr):
    """``R*`` — zero or more join-repetitions of ``R``."""

    __slots__ = ("inner",)

    def __init__(self, inner: RegexExpr):
        object.__setattr__(self, "inner", _check_expr(inner))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("regex nodes are immutable")

    @property
    def nullable(self) -> bool:
        return True

    def children(self) -> Tuple[RegexExpr, ...]:
        return (self.inner,)

    def simplified(self) -> RegexExpr:
        inner = self.inner.simplified()
        if isinstance(inner, (Empty, Epsilon)):
            return EPSILON
        if isinstance(inner, Star):
            return inner
        if isinstance(inner, Repeat) and inner.minimum == 0 and inner.maximum is None:
            return inner
        return Star(inner)

    def _key(self) -> Hashable:
        return (self.inner,)

    def __repr__(self) -> str:
        return "Star({!r})".format(self.inner)

    def __str__(self) -> str:
        return "{}*".format(self.inner)


class Repeat(RegexExpr):
    """Bounded repetition ``R{min,max}`` with join semantics between copies.

    ``maximum=None`` means unbounded (``R{min,} = R^min ><_o R*``).  The
    derived forms all reduce here: ``R? = R{0,1}``, ``R+ = R{1,}``,
    ``R^n = R{n,n}``.
    """

    __slots__ = ("inner", "minimum", "maximum")

    def __init__(self, inner: RegexExpr, minimum: int, maximum: Optional[int]):
        if minimum < 0:
            raise RegexError("repetition minimum must be >= 0")
        if maximum is not None and maximum < minimum:
            raise RegexError("repetition maximum must be >= minimum")
        object.__setattr__(self, "inner", _check_expr(inner))
        object.__setattr__(self, "minimum", minimum)
        object.__setattr__(self, "maximum", maximum)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("regex nodes are immutable")

    @property
    def nullable(self) -> bool:
        return self.minimum == 0 or self.inner.nullable

    def children(self) -> Tuple[RegexExpr, ...]:
        return (self.inner,)

    def simplified(self) -> RegexExpr:
        inner = self.inner.simplified()
        if isinstance(inner, Empty):
            return EPSILON if self.minimum == 0 else EMPTY
        if isinstance(inner, Epsilon):
            return EPSILON
        if self.minimum == 0 and self.maximum is None:
            return Star(inner).simplified()
        if self.minimum == 1 and self.maximum == 1:
            return inner
        if self.maximum == 0:
            return EPSILON
        return Repeat(inner, self.minimum, self.maximum)

    def expand(self) -> RegexExpr:
        """Rewrite into the primitive operators (join / union / star).

        ``R{2,4} -> R . R . (R | eps) . (R | eps)``;
        ``R{2,} -> R . R . R*``.  Used by the Thompson construction so the
        NFA only needs the primitive node types.
        """
        copies = [self.inner] * self.minimum
        if self.maximum is None:
            copies.append(Star(self.inner))
        else:
            optional_part = Union((self.inner, EPSILON))
            copies.extend([optional_part] * (self.maximum - self.minimum))
        if not copies:
            return EPSILON
        if len(copies) == 1:
            return copies[0]
        return Join(tuple(copies))

    def _key(self) -> Hashable:
        return (self.inner, self.minimum, self.maximum)

    def __repr__(self) -> str:
        return "Repeat({!r}, {}, {})".format(self.inner, self.minimum, self.maximum)

    def __str__(self) -> str:
        if self.minimum == 0 and self.maximum == 1:
            return "{}?".format(self.inner)
        if self.minimum == 1 and self.maximum is None:
            return "{}+".format(self.inner)
        if self.maximum is None:
            return "{}{{{},}}".format(self.inner, self.minimum)
        if self.minimum == self.maximum:
            return "{}{{{}}}".format(self.inner, self.minimum)
        return "{}{{{},{}}}".format(self.inner, self.minimum, self.maximum)


#: Shared singletons for the two constant languages.
EMPTY = Empty()
EPSILON = Epsilon()


def evaluate(expression: RegexExpr, graph: MultiRelationalGraph,
             max_length: int) -> PathSet:
    """Directly evaluate a regular path expression against a graph.

    This is the *reference semantics*: a structural recursion using the
    section II operations, with stars computed as bounded fixpoints (any
    star over a cyclic graph is infinite, so ``max_length`` truncates by
    path length).  The automaton generator in :mod:`repro.automata` must
    agree with this function up to the bound — the property-based tests
    enforce exactly that.
    """
    if max_length < 0:
        raise RegexError("max_length must be >= 0")
    expr = expression
    if isinstance(expr, Empty):
        return PathSet.empty()
    if isinstance(expr, Epsilon):
        return PathSet.epsilon()
    if isinstance(expr, (Atom, Literal)):
        resolved = expr.resolve(graph)
        return PathSet(p for p in resolved if len(p) <= max_length)
    if isinstance(expr, Union):
        out = PathSet.empty()
        for part in expr.parts:
            out = out | evaluate(part, graph, max_length)
        return out
    if isinstance(expr, Join):
        out = PathSet.epsilon()
        for part in expr.parts:
            out = out.join(evaluate(part, graph, max_length))
            out = PathSet(p for p in out if len(p) <= max_length)
            if not out:
                return out
        return out
    if isinstance(expr, Product):
        out = PathSet.epsilon()
        for part in expr.parts:
            out = out.product(evaluate(part, graph, max_length))
            out = PathSet(p for p in out if len(p) <= max_length)
            if not out:
                return out
        return out
    if isinstance(expr, Star):
        base = evaluate(expr.inner, graph, max_length)
        return _bounded_star(base, max_length)
    if isinstance(expr, Repeat):
        return evaluate(expr.expand(), graph, max_length)
    raise RegexError("unknown expression node {!r}".format(expr))


def _bounded_star(base: PathSet, max_length: int) -> PathSet:
    """``U_n base^n`` truncated at path length ``max_length`` (a fixpoint)."""
    result = {Path()}
    frontier = {Path()}
    while frontier:
        grown = PathSet(frontier).join(base)
        fresh = {p for p in grown.paths if len(p) <= max_length and p not in result}
        result.update(fresh)
        frontier = fresh
    return PathSet(result)
