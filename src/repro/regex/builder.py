"""Convenience constructors for regular path expressions.

These are the spellings used throughout the examples, tests and datasets:

>>> from repro.regex import atom, literal, join, union, star
>>> expr = join(atom(tail="i", label="alpha"),
...             star(atom(label="beta")),
...             union(join(atom(label="alpha", head="j"),
...                        literal(("j", "alpha", "i"))),
...                   atom(label="alpha", head="k")))

which is the paper's Figure 1 expression
``[i,a,_] ><_o [_,b,_]* ><_o (([_,a,j] ><_o {(j,a,i)}) U [_,a,k])``.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.pathset import PathSet
from repro.errors import RegexError
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Atom,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
)

__all__ = [
    "atom",
    "literal",
    "empty",
    "epsilon",
    "union",
    "join",
    "product",
    "star",
    "plus",
    "optional",
    "power",
    "repeat",
    "any_edge",
    "labeled",
    "from_vertex",
    "to_vertex",
]


def atom(tail: Optional[Hashable] = None, label: Optional[Hashable] = None,
         head: Optional[Hashable] = None) -> Atom:
    """The set-builder pattern ``[tail, label, head]`` (None = wildcard)."""
    return Atom(tail=tail, label=label, head=head)


def literal(*paths) -> Literal:
    """An explicit path set: ``literal(("j", "a", "i"))`` is ``{(j, a, i)}``."""
    return Literal(PathSet(paths))


def empty() -> RegexExpr:
    """The empty language ``{}``."""
    return EMPTY


def epsilon() -> RegexExpr:
    """The language ``{eps}``."""
    return EPSILON


def union(*expressions: RegexExpr) -> RegexExpr:
    """``R1 U R2 U ...`` (zero operands give the empty language)."""
    if not expressions:
        return EMPTY
    if len(expressions) == 1:
        return expressions[0]
    return Union(expressions)


def join(*expressions: RegexExpr) -> RegexExpr:
    """``R1 ><_o R2 ><_o ...`` (zero operands give ``{eps}``)."""
    if not expressions:
        return EPSILON
    if len(expressions) == 1:
        return expressions[0]
    return Join(expressions)


def product(*expressions: RegexExpr) -> RegexExpr:
    """``R1 x_o R2 x_o ...`` (zero operands give ``{eps}``)."""
    if not expressions:
        return EPSILON
    if len(expressions) == 1:
        return expressions[0]
    return Product(expressions)


def star(expression: RegexExpr) -> Star:
    """``R*``."""
    return Star(expression)


def plus(expression: RegexExpr) -> RegexExpr:
    """``R+ = R ><_o R*``."""
    return expression.plus()


def optional(expression: RegexExpr) -> RegexExpr:
    """``R? = R U {eps}``."""
    return expression.optional()


def power(expression: RegexExpr, n: int) -> RegexExpr:
    """``R^n`` — exactly n join-repetitions."""
    return expression ** n


def repeat(expression: RegexExpr, minimum: int, maximum: Optional[int]) -> RegexExpr:
    """``R{min,max}`` (``maximum=None`` for unbounded)."""
    return Repeat(expression, minimum, maximum)


def any_edge() -> Atom:
    """``[_, _, _] = E`` — one arbitrary edge."""
    return Atom()


def labeled(label: Hashable) -> Atom:
    """``[_, label, _]`` — one edge carrying ``label``."""
    return Atom(label=label)


def from_vertex(vertex: Hashable, label: Optional[Hashable] = None) -> Atom:
    """``[vertex, label?, _]`` — one edge leaving ``vertex``."""
    return Atom(tail=vertex, label=label)


def to_vertex(vertex: Hashable, label: Optional[Hashable] = None) -> Atom:
    """``[_, label?, vertex]`` — one edge entering ``vertex``."""
    return Atom(label=label, head=vertex)
