"""Regular path expressions over the edge alphabet (paper section IV-A).

Public surface:

* the AST node types (:class:`Atom`, :class:`Literal`, :class:`Union`,
  :class:`Join`, :class:`Product`, :class:`Star`, :class:`Repeat`,
  :data:`EMPTY`, :data:`EPSILON`),
* builder helpers (:func:`atom`, :func:`literal`, :func:`union`,
  :func:`join`, :func:`product`, :func:`star`, :func:`plus`,
  :func:`optional`, :func:`power`, :func:`repeat`),
* :func:`evaluate` — the direct reference semantics,
* :func:`repro.regex.derivatives.matches` — derivative-based recognition.
"""

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Atom,
    Empty,
    Epsilon,
    Join,
    Literal,
    Product,
    RegexExpr,
    Repeat,
    Star,
    Union,
    evaluate,
)
from repro.regex.builder import (
    any_edge,
    atom,
    empty,
    epsilon,
    from_vertex,
    join,
    labeled,
    literal,
    optional,
    plus,
    power,
    product,
    repeat,
    star,
    to_vertex,
    union,
)
from repro.regex.derivatives import derive, matches

__all__ = [
    "RegexExpr", "Empty", "Epsilon", "Atom", "Literal", "Union", "Join",
    "Product", "Star", "Repeat", "EMPTY", "EPSILON", "evaluate",
    "atom", "literal", "empty", "epsilon", "union", "join", "product",
    "star", "plus", "optional", "power", "repeat", "any_edge", "labeled",
    "from_vertex", "to_vertex", "derive", "matches",
]
