"""Graphviz DOT rendering (dependency-free text emission).

Two renderers:

* :func:`graph_to_dot` — a multi-relational graph as a DOT digraph, with
  edge labels and optional per-label colors and vertex-kind shapes,
* :func:`nfa_to_dot` — a compiled expression NFA in the style of the
  paper's Figure 1 (double-circled accept states, edge-set transition
  labels, dashed epsilon moves, dotted product boundaries).

Emission is plain string building, so the library gains no dependency;
pipe the output to ``dot -Tpng`` to render.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.automata.nfa import NFA
from repro.graph.graph import MultiRelationalGraph

__all__ = ["graph_to_dot", "nfa_to_dot"]

_PALETTE = ("black", "blue3", "red3", "darkgreen", "purple3",
            "darkorange2", "deeppink3", "cyan4")


def _quote(value) -> str:
    """DOT-quote an identifier, escaping embedded quotes."""
    return '"{}"'.format(str(value).replace('"', '\\"'))


def graph_to_dot(graph: MultiRelationalGraph, name: Optional[str] = None,
                 color_labels: bool = True,
                 kind_property: Optional[str] = "kind") -> str:
    """Render a multi-relational graph as DOT text.

    Each relation type gets a stable color (cycled from a small palette)
    when ``color_labels``; vertices whose ``kind_property`` property is set
    get one shape per kind (box, ellipse, diamond, ... cycled).
    """
    lines = ["digraph {} {{".format(_quote(name or graph.name or "G"))]
    lines.append("  rankdir=LR;")
    label_colors: Dict[Hashable, str] = {}
    if color_labels:
        for position, label in enumerate(sorted(graph.labels(), key=repr)):
            label_colors[label] = _PALETTE[position % len(_PALETTE)]
    shapes = ("ellipse", "box", "diamond", "hexagon", "octagon")
    kind_shapes: Dict[Hashable, str] = {}
    for vertex in sorted(graph.vertices(), key=repr):
        attributes = []
        if kind_property is not None:
            kind = graph.vertex_properties(vertex).get(kind_property)
            if kind is not None:
                if kind not in kind_shapes:
                    kind_shapes[kind] = shapes[len(kind_shapes) % len(shapes)]
                attributes.append("shape={}".format(kind_shapes[kind]))
        suffix = " [{}]".format(", ".join(attributes)) if attributes else ""
        lines.append("  {}{};".format(_quote(vertex), suffix))
    for e in sorted(graph.edge_set(), key=repr):
        attributes = ["label={}".format(_quote(e.label))]
        color = label_colors.get(e.label)
        if color:
            attributes.append("color={}".format(color))
            attributes.append("fontcolor={}".format(color))
        lines.append("  {} -> {} [{}];".format(
            _quote(e.tail), _quote(e.head), ", ".join(attributes)))
    lines.append("}")
    return "\n".join(lines)


def nfa_to_dot(nfa: NFA, name: str = "NFA") -> str:
    """Render a compiled NFA as DOT, Figure-1 style.

    * the accept state is a double circle,
    * consuming transitions are solid, labeled with the edge-set matcher,
    * plain epsilon moves are dashed and labeled with an epsilon marker,
    * product-boundary epsilons are dotted and annotated ``x`` (they exempt
      the adjacency check — the ``x_o`` boundary).
    """
    lines = ["digraph {} {{".format(_quote(name))]
    lines.append("  rankdir=LR;")
    lines.append("  __start [shape=point];")
    for state in range(nfa.num_states):
        shape = "doublecircle" if state == nfa.accept else "circle"
        lines.append("  {} [shape={}];".format(state, shape))
    lines.append("  __start -> {};".format(nfa.start))
    from repro.automata.nfa import EPS_JOIN, EPS_PRODUCT
    for source in range(nfa.num_states):
        for matcher, target in nfa.consuming[source]:
            lines.append("  {} -> {} [label={}];".format(
                source, target, _quote(str(matcher))))
        for target, kind in nfa.epsilon[source]:
            if kind == EPS_PRODUCT:
                lines.append(
                    "  {} -> {} [style=dotted, label=\"eps(x)\"];".format(
                        source, target))
            elif kind == EPS_JOIN:
                lines.append(
                    "  {} -> {} [style=dotted, label=\"eps(.)\"];".format(
                        source, target))
            else:
                lines.append(
                    "  {} -> {} [style=dashed, label=\"eps\"];".format(
                        source, target))
    lines.append("}")
    return "\n".join(lines)
