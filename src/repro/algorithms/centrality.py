"""Geodesic and spectral centrality measures.

These are the "geodesics (e.g. closeness centrality, betweenness
centrality), spectral (e.g. eigenvector centrality, ...)" algorithms the
paper's section IV-C names as consumers of projected single-relational
graphs.  Implementations follow the standard references (Brandes for
betweenness; power iteration for the spectral family) and are validated
against NetworkX in the test suite.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, Optional

from repro.algorithms.digraph import DiGraph
from repro.errors import AlgorithmError, ConvergenceError

__all__ = [
    "degree_centrality",
    "in_degree_centrality",
    "out_degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "eigenvector_centrality",
    "katz_centrality",
]


def degree_centrality(graph: DiGraph) -> Dict[Hashable, float]:
    """Total degree divided by ``|V| - 1`` (the usual normalization)."""
    n = graph.order()
    if n <= 1:
        return {v: 0.0 for v in graph.vertices()}
    scale = 1.0 / (n - 1)
    return {
        v: (graph.in_degree(v) + graph.out_degree(v)) * scale
        for v in graph.vertices()
    }


def in_degree_centrality(graph: DiGraph) -> Dict[Hashable, float]:
    """In-degree divided by ``|V| - 1``."""
    n = graph.order()
    if n <= 1:
        return {v: 0.0 for v in graph.vertices()}
    scale = 1.0 / (n - 1)
    return {v: graph.in_degree(v) * scale for v in graph.vertices()}


def out_degree_centrality(graph: DiGraph) -> Dict[Hashable, float]:
    """Out-degree divided by ``|V| - 1``."""
    n = graph.order()
    if n <= 1:
        return {v: 0.0 for v in graph.vertices()}
    scale = 1.0 / (n - 1)
    return {v: graph.out_degree(v) * scale for v in graph.vertices()}


def closeness_centrality(graph: DiGraph) -> Dict[Hashable, float]:
    """Incoming-distance closeness with the Wasserman–Faust component scaling.

    Matches NetworkX's definition: for each vertex v, BFS over *incoming*
    paths (who can reach v), ``closeness = ((r - 1) / total_distance) *
    ((r - 1) / (n - 1))`` where r is v's reachable-set size.  Vertices
    reached by nobody score 0.

    Large graphs run reverse-CSR BFS sweeps on the compact snapshot
    (:meth:`repro.graph.compact.CompactDiGraph.closeness_centrality_scores`,
    same arithmetic, no transpose-graph materialization); the dict version
    below remains the small-graph path and no-numpy fallback.
    """
    from repro.graph.compact import digraph_snapshot_if_large
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        return snapshot.closeness_centrality_scores()
    return _closeness_centrality_dict(graph)


def _closeness_centrality_dict(graph: DiGraph) -> Dict[Hashable, float]:
    """Reference dict implementation (always available)."""
    n = graph.order()
    reverse = graph.reversed()
    out: Dict[Hashable, float] = {}
    for v in graph.vertices():
        distances = reverse.bfs_distances(v)
        reachable = len(distances)
        total = sum(distances.values())
        if total > 0 and n > 1:
            closeness = (reachable - 1) / total
            closeness *= (reachable - 1) / (n - 1)
        else:
            closeness = 0.0
        out[v] = closeness
    return out


def betweenness_centrality(graph: DiGraph, normalized: bool = True) -> Dict[Hashable, float]:
    """Brandes' algorithm for shortest-path betweenness (unweighted).

    Directed normalization divides by ``(n - 1)(n - 2)``.

    Large graphs run the integer-indexed Brandes over the compact forward
    CSR (flat sigma/delta arrays, no per-source dict churn); the dict
    version below remains the small-graph path and no-numpy fallback.
    Scores agree up to float associativity (successor visitation order
    differs), which the differential tests bound at 1e-9.
    """
    from repro.graph.compact import digraph_snapshot_if_large
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        return snapshot.betweenness_centrality_scores(normalized)
    return _betweenness_centrality_dict(graph, normalized)


def _betweenness_centrality_dict(graph: DiGraph,
                                 normalized: bool = True) -> Dict[Hashable, float]:
    """Reference dict implementation (always available)."""
    betweenness: Dict[Hashable, float] = {v: 0.0 for v in graph.vertices()}
    for source in graph.vertices():
        # Single-source shortest paths with path counting.
        stack = []
        predecessors: Dict[Hashable, list] = {v: [] for v in graph.vertices()}
        sigma: Dict[Hashable, float] = {v: 0.0 for v in graph.vertices()}
        sigma[source] = 1.0
        distance: Dict[Hashable, int] = {source: 0}
        queue: deque = deque([source])
        while queue:
            vertex = queue.popleft()
            stack.append(vertex)
            for successor in graph.successors(vertex):
                if successor not in distance:
                    distance[successor] = distance[vertex] + 1
                    queue.append(successor)
                if distance[successor] == distance[vertex] + 1:
                    sigma[successor] += sigma[vertex]
                    predecessors[successor].append(vertex)
        # Accumulation.
        delta: Dict[Hashable, float] = {v: 0.0 for v in graph.vertices()}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != source:
                betweenness[w] += delta[w]
    n = graph.order()
    if normalized and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))
        betweenness = {v: value * scale for v, value in betweenness.items()}
    return betweenness


def eigenvector_centrality(graph: DiGraph, max_iterations: int = 1000,
                           tolerance: float = 1.0e-8) -> Dict[Hashable, float]:
    """Power-iteration eigenvector centrality (left eigenvector, in-edges).

    A vertex is central when pointed to by central vertices; weights are
    respected.  Follows NetworkX's convention (start uniform, L2-normalize,
    L1 convergence test scaled by n).

    Raises
    ------
    ConvergenceError
        If the iteration cap is reached first (e.g. strongly periodic graphs).
    """
    n = graph.order()
    if n == 0:
        return {}
    scores = {v: 1.0 / n for v in graph.vertices()}
    for _ in range(max_iterations):
        previous = scores
        scores = {v: 0.0 for v in previous}
        for v, value in previous.items():
            for successor, weight in graph.successor_weights(v).items():
                scores[successor] += value * weight
        norm = math.sqrt(sum(value * value for value in scores.values())) or 1.0
        scores = {v: value / norm for v, value in scores.items()}
        if sum(abs(scores[v] - previous[v]) for v in scores) < n * tolerance:
            return scores
    raise ConvergenceError("eigenvector_centrality", max_iterations, tolerance)


def katz_centrality(graph: DiGraph, alpha: float = 0.1, beta: float = 1.0,
                    max_iterations: int = 1000,
                    tolerance: float = 1.0e-8) -> Dict[Hashable, float]:
    """Katz centrality: ``x = alpha * A^T x + beta`` by fixed-point iteration.

    ``alpha`` must be below the reciprocal of the largest eigenvalue of the
    adjacency matrix for convergence; the default 0.1 is safe for the sparse
    graphs used here.  L2-normalized like NetworkX.
    """
    n = graph.order()
    if n == 0:
        return {}
    scores = {v: 0.0 for v in graph.vertices()}
    for _ in range(max_iterations):
        previous = scores
        scores = {v: 0.0 for v in previous}
        for v, value in previous.items():
            for successor, weight in graph.successor_weights(v).items():
                scores[successor] += value * weight
        scores = {v: alpha * value + beta for v, value in scores.items()}
        if sum(abs(scores[v] - previous[v]) for v in scores) < n * tolerance:
            norm = math.sqrt(sum(value * value for value in scores.values())) or 1.0
            return {v: value / norm for v, value in scores.items()}
    raise ConvergenceError("katz_centrality", max_iterations, tolerance)
