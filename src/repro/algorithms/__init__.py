"""The single-relational algorithm library (paper section IV-C's consumers).

The substrate is :class:`DiGraph`; inputs typically come from
:mod:`repro.core.projection` (``BinaryProjection.to_digraph``).  Every
algorithm here is cross-validated against NetworkX in the test suite.
"""

from repro.algorithms.digraph import DiGraph
from repro.algorithms.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
    in_degree_centrality,
    katz_centrality,
    out_degree_centrality,
)
from repro.algorithms.pagerank import pagerank
from repro.algorithms.geodesics import (
    all_pairs_shortest_lengths,
    average_path_length,
    diameter,
    dijkstra,
    eccentricity,
    shortest_path,
    shortest_path_lengths,
)
from repro.algorithms.components import (
    average_clustering,
    clustering_coefficient,
    condensation_edges,
    is_weakly_connected,
    reachable_set,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.algorithms.assortativity import (
    degree_assortativity,
    discrete_assortativity,
    mixing_matrix,
    scalar_assortativity,
)
from repro.algorithms.spreading import spreading_activation
from repro.algorithms.link_analysis import harmonic_centrality, hits

__all__ = [
    "hits", "harmonic_centrality",
    "DiGraph",
    "degree_centrality", "in_degree_centrality", "out_degree_centrality",
    "closeness_centrality", "betweenness_centrality",
    "eigenvector_centrality", "katz_centrality",
    "pagerank",
    "shortest_path_lengths", "shortest_path", "all_pairs_shortest_lengths",
    "dijkstra", "eccentricity", "diameter", "average_path_length",
    "weakly_connected_components", "strongly_connected_components",
    "is_weakly_connected", "reachable_set", "condensation_edges",
    "clustering_coefficient", "average_clustering",
    "scalar_assortativity", "degree_assortativity",
    "discrete_assortativity", "mixing_matrix",
    "spreading_activation",
]
