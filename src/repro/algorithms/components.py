"""Connectivity structure: weak/strong components, reachability, clustering.

Strongly connected components use Tarjan's algorithm (iterative, so deep
graphs do not hit the recursion limit); weak components use union-find.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Set

from repro.algorithms.digraph import DiGraph

__all__ = [
    "weakly_connected_components",
    "strongly_connected_components",
    "is_weakly_connected",
    "reachable_set",
    "condensation_edges",
    "clustering_coefficient",
    "average_clustering",
]


def weakly_connected_components(graph: DiGraph) -> List[FrozenSet[Hashable]]:
    """Components of the underlying undirected graph.

    Large graphs flood-fill the compact undirected CSR arrays
    (:class:`repro.graph.compact.CompactDiGraph`); union-find remains the
    small-graph path and no-numpy fallback.  Output order is identical:
    sorted by descending size, ties broken by member repr.
    """
    from repro.graph.compact import digraph_snapshot_if_large
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        labels = snapshot.weak_component_labels().tolist()
        groups_by_id: Dict[int, Set[Hashable]] = {}
        for vertex_id, component_id in enumerate(labels):
            groups_by_id.setdefault(component_id, set()).add(
                snapshot.vertex_of[vertex_id])
        return sorted(
            (frozenset(group) for group in groups_by_id.values()),
            key=lambda group: (-len(group), repr(sorted(group, key=repr))))
    return _weakly_connected_components_unionfind(graph)


def _weakly_connected_components_unionfind(
        graph: DiGraph) -> List[FrozenSet[Hashable]]:
    """Reference union-find implementation (always available)."""
    parent: Dict[Hashable, Hashable] = {v: v for v in graph.vertices()}

    def find(v: Hashable) -> Hashable:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    for tail, head, _ in graph.edges():
        parent[find(tail)] = find(head)
    groups: Dict[Hashable, Set[Hashable]] = {}
    for v in graph.vertices():
        groups.setdefault(find(v), set()).add(v)
    return sorted((frozenset(group) for group in groups.values()),
                  key=lambda group: (-len(group), repr(sorted(group, key=repr))))


def strongly_connected_components(graph: DiGraph) -> List[FrozenSet[Hashable]]:
    """Tarjan's SCC algorithm, iterative formulation.

    Large graphs run the integer-indexed Tarjan over the compact forward
    CSR (:class:`repro.graph.compact.CompactDiGraph`); the dict version
    below remains the small-graph path and no-numpy fallback.  The SCC
    partition is unique, so both produce identical output after the shared
    canonical sort (descending size, ties by member repr).
    """
    from repro.graph.compact import digraph_snapshot_if_large
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        labels = snapshot.strongly_connected_component_labels()
        groups_by_id: Dict[int, Set[Hashable]] = {}
        for vertex_id, component_id in enumerate(labels):
            groups_by_id.setdefault(component_id, set()).add(
                snapshot.vertex_of[vertex_id])
        return sorted(
            (frozenset(group) for group in groups_by_id.values()),
            key=lambda group: (-len(group), repr(sorted(group, key=repr))))
    return _strongly_connected_components_dict(graph)


def _strongly_connected_components_dict(
        graph: DiGraph) -> List[FrozenSet[Hashable]]:
    """Reference dict-based iterative Tarjan (always available)."""
    index_counter = [0]
    index: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[FrozenSet[Hashable]] = []

    for root in graph.vertices():
        if root in index:
            continue
        work: List[tuple] = [(root, iter(sorted(graph.successors(root), key=repr)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            vertex, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor,
                                 iter(sorted(graph.successors(successor), key=repr))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[vertex] = min(lowlink[vertex], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index[vertex]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == vertex:
                        break
                components.append(frozenset(component))
    return sorted(components,
                  key=lambda group: (-len(group), repr(sorted(group, key=repr))))


def is_weakly_connected(graph: DiGraph) -> bool:
    """True when the underlying undirected graph has one component."""
    if graph.order() == 0:
        return True
    return len(weakly_connected_components(graph)) == 1


def reachable_set(graph: DiGraph, source: Hashable) -> FrozenSet[Hashable]:
    """Every vertex reachable from ``source`` (including itself)."""
    return frozenset(graph.bfs_distances(source))


def condensation_edges(graph: DiGraph) -> Set[tuple]:
    """Edges between SCCs: ``(component_index_tail, component_index_head)``.

    Components are indexed by their position in
    :func:`strongly_connected_components`'s sorted output.
    """
    components = strongly_connected_components(graph)
    membership: Dict[Hashable, int] = {}
    for position, component in enumerate(components):
        for v in component:
            membership[v] = position
    out: Set[tuple] = set()
    for tail, head, _ in graph.edges():
        if membership[tail] != membership[head]:
            out.add((membership[tail], membership[head]))
    return out


def clustering_coefficient(graph: DiGraph, vertex: Hashable) -> float:
    """Undirected local clustering: triangle density among neighbors."""
    neighbors = graph.undirected_neighbors(vertex) - {vertex}
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_list = sorted(neighbors, key=repr)
    for position, a in enumerate(neighbor_list):
        for b in neighbor_list[position + 1:]:
            if graph.has_edge(a, b) or graph.has_edge(b, a):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: DiGraph) -> float:
    """Mean local clustering over all vertices (0 on the empty graph)."""
    vertices = graph.vertices()
    if not vertices:
        return 0.0
    return sum(clustering_coefficient(graph, v) for v in vertices) / len(vertices)
