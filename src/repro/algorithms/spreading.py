"""Spreading activation — the spectral-family ranking section IV-C names.

Energy is injected at seed vertices and diffused along out-edges for a fixed
number of steps, decaying each hop; a vertex's score is the total energy
that passed through it.  This is the classical associative-retrieval
algorithm (and the paper's earlier Grammar-Based Random Walker work built
on it), here implemented over the plain :class:`DiGraph` substrate so it
can consume section IV-C projections.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.algorithms.digraph import DiGraph
from repro.errors import AlgorithmError

__all__ = ["spreading_activation"]


def spreading_activation(graph: DiGraph, seeds: Dict[Hashable, float],
                         steps: int = 3, decay: float = 0.85,
                         threshold: float = 1.0e-9) -> Dict[Hashable, float]:
    """Diffuse seed energy for ``steps`` hops; return accumulated activation.

    Parameters
    ----------
    graph:
        The digraph to diffuse over; out-edge weights split the energy
        proportionally.
    seeds:
        Initial energy per vertex (non-negative, at least one positive).
    steps:
        Number of diffusion rounds.
    decay:
        Per-hop retention factor in (0, 1]; lower means faster falloff.
    threshold:
        Energy packets below this are dropped (sparsity floor).

    Returns
    -------
    dict
        ``vertex -> accumulated activation`` including the seed energy.
    """
    if steps < 0:
        raise AlgorithmError("steps must be >= 0")
    if not 0.0 < decay <= 1.0:
        raise AlgorithmError("decay must be in (0, 1]")
    if not seeds or all(value <= 0.0 for value in seeds.values()):
        raise AlgorithmError("seeds must include at least one positive energy")
    for vertex, value in seeds.items():
        if value < 0.0:
            raise AlgorithmError("seed energy must be non-negative")
        if not graph.has_vertex(vertex):
            raise AlgorithmError("seed vertex {!r} not in graph".format(vertex))

    activation: Dict[Hashable, float] = dict(seeds)
    frontier: Dict[Hashable, float] = dict(seeds)
    for _ in range(steps):
        next_frontier: Dict[Hashable, float] = {}
        for vertex, energy in frontier.items():
            weights = graph.successor_weights(vertex)
            total = sum(weights.values())
            if total == 0.0:
                continue
            for successor, weight in weights.items():
                packet = decay * energy * (weight / total)
                if packet < threshold:
                    continue
                next_frontier[successor] = next_frontier.get(successor, 0.0) + packet
        for vertex, energy in next_frontier.items():
            activation[vertex] = activation.get(vertex, 0.0) + energy
        frontier = next_frontier
        if not frontier:
            break
    return activation
