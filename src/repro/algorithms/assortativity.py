"""Assortativity: scalar (Pearson over edge endpoints) and discrete (modular).

The "assortative (e.g. scalar and discrete)" algorithms of section IV-C's
inventory.  Scalar assortativity is Newman's Pearson correlation between a
numeric vertex attribute at the tail and head of each edge (degree
assortativity is the special case where the attribute is the degree);
discrete assortativity is the normalized trace of the label mixing matrix.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable

from repro.algorithms.digraph import DiGraph
from repro.errors import AlgorithmError

__all__ = [
    "scalar_assortativity",
    "degree_assortativity",
    "discrete_assortativity",
    "mixing_matrix",
]


def scalar_assortativity(graph: DiGraph,
                         attribute: Dict[Hashable, float]) -> float:
    """Pearson correlation of ``attribute`` across directed edges.

    For each edge ``(u, v)`` the sample pairs are
    ``(attribute[u], attribute[v])``.

    Raises
    ------
    AlgorithmError
        If the graph has no edges, an endpoint lacks the attribute, or
        either marginal is constant (correlation undefined).
    """
    pairs = []
    for tail, head, _ in graph.edges():
        if tail not in attribute or head not in attribute:
            raise AlgorithmError(
                "attribute missing for edge ({!r}, {!r})".format(tail, head))
        pairs.append((float(attribute[tail]), float(attribute[head])))
    if not pairs:
        raise AlgorithmError("scalar assortativity undefined on an edgeless graph")
    n = float(len(pairs))
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in pairs) / n
    var_y = sum((y - mean_y) ** 2 for _, y in pairs) / n
    if var_x == 0.0 or var_y == 0.0:
        raise AlgorithmError("scalar assortativity undefined: constant attribute")
    return cov / math.sqrt(var_x * var_y)


def degree_assortativity(graph: DiGraph) -> float:
    """Out-degree/in-degree assortativity: correlation of (out(u), in(v)) over edges."""
    pairs = []
    for tail, head, _ in graph.edges():
        pairs.append((float(graph.out_degree(tail)), float(graph.in_degree(head))))
    if not pairs:
        raise AlgorithmError("degree assortativity undefined on an edgeless graph")
    n = float(len(pairs))
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in pairs) / n
    var_y = sum((y - mean_y) ** 2 for _, y in pairs) / n
    if var_x == 0.0 or var_y == 0.0:
        raise AlgorithmError("degree assortativity undefined: constant degrees")
    return cov / math.sqrt(var_x * var_y)


def mixing_matrix(graph: DiGraph,
                  category: Dict[Hashable, Hashable]) -> Dict[tuple, float]:
    """``(category_tail, category_head) -> edge fraction`` over all edges."""
    counts: Dict[tuple, int] = {}
    total = 0
    for tail, head, _ in graph.edges():
        if tail not in category or head not in category:
            raise AlgorithmError(
                "category missing for edge ({!r}, {!r})".format(tail, head))
        key = (category[tail], category[head])
        counts[key] = counts.get(key, 0) + 1
        total += 1
    if total == 0:
        raise AlgorithmError("mixing matrix undefined on an edgeless graph")
    return {key: count / float(total) for key, count in counts.items()}


def discrete_assortativity(graph: DiGraph,
                           category: Dict[Hashable, Hashable]) -> float:
    """Newman's discrete assortativity coefficient.

    ``r = (trace(M) - sum(a_i b_i)) / (1 - sum(a_i b_i))`` where M is the
    mixing matrix, ``a``/``b`` its row/column marginals.  1 means perfectly
    assortative (edges stay within categories); 0 means random mixing.
    """
    matrix = mixing_matrix(graph, category)
    categories = {key[0] for key in matrix} | {key[1] for key in matrix}
    row = {c: sum(value for key, value in matrix.items() if key[0] == c)
           for c in categories}
    col = {c: sum(value for key, value in matrix.items() if key[1] == c)
           for c in categories}
    trace = sum(matrix.get((c, c), 0.0) for c in categories)
    random_agreement = sum(row[c] * col[c] for c in categories)
    if random_agreement >= 1.0:
        raise AlgorithmError(
            "discrete assortativity undefined: single category")
    return (trace - random_agreement) / (1.0 - random_agreement)
