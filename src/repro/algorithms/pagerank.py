"""PageRank with teleportation — the canonical "priors-based" algorithm.

The paper's footnote 5 motivates the concatenative product with exactly this
family: "priors-based algorithms require the concept of 'teleportation' in
order to make a disjoint jump in the graph".  PageRank's damping jump *is*
that teleportation.  Implementation is standard power iteration with
dangling-mass redistribution and optional personalization, matching
NetworkX's semantics (validated in tests).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.algorithms.digraph import DiGraph
from repro.errors import AlgorithmError, ConvergenceError

__all__ = ["pagerank"]


def pagerank(graph: DiGraph, damping: float = 0.85,
             personalization: Optional[Dict[Hashable, float]] = None,
             max_iterations: int = 200,
             tolerance: float = 1.0e-10) -> Dict[Hashable, float]:
    """The stationary distribution of the damped random walk.

    Parameters
    ----------
    graph:
        The (possibly weighted) digraph; out-edge weights bias the walk.
    damping:
        Probability of following an edge (1 - damping teleports).
    personalization:
        Optional teleport distribution ``vertex -> mass`` (normalized
        internally); uniform when omitted.
    max_iterations / tolerance:
        Power-iteration controls; L1 convergence test scaled by n.

    Raises
    ------
    AlgorithmError
        On an invalid damping factor or empty personalization.
    ConvergenceError
        If the iteration cap is reached first.
    """
    if not 0.0 <= damping <= 1.0:
        raise AlgorithmError("damping must be within [0, 1]")
    n = graph.order()
    if n == 0:
        return {}
    vertices = graph.vertices()
    if personalization is None:
        teleport = {v: 1.0 / n for v in vertices}
    else:
        total = float(sum(personalization.values()))
        if total <= 0.0:
            raise AlgorithmError("personalization must have positive total mass")
        teleport = {v: personalization.get(v, 0.0) / total for v in vertices}

    # Large graphs run the same power iteration over compact edge arrays
    # (vectorized gather + bincount scatter); the dict loop below remains
    # the small-graph path and no-numpy fallback.
    from repro.graph.compact import digraph_snapshot_if_large
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        ranks = snapshot.pagerank(damping, teleport, max_iterations,
                                  tolerance)
        if ranks is None:
            raise ConvergenceError("pagerank", max_iterations, tolerance)
        return ranks

    out_weight = {v: graph.out_degree(v, weighted=True) for v in vertices}
    dangling = [v for v in vertices if out_weight[v] == 0.0]
    ranks = dict(teleport)
    for _ in range(max_iterations):
        previous = ranks
        dangling_mass = sum(previous[v] for v in dangling)
        ranks = {v: 0.0 for v in vertices}
        for v, mass in previous.items():
            weight_total = out_weight[v]
            if weight_total == 0.0:
                continue
            share = damping * mass / weight_total
            for successor, weight in graph.successor_weights(v).items():
                ranks[successor] += share * weight
        base = damping * dangling_mass
        for v in vertices:
            ranks[v] += (base + (1.0 - damping)) * teleport[v]
        if sum(abs(ranks[v] - previous[v]) for v in vertices) < n * tolerance:
            return ranks
    raise ConvergenceError("pagerank", max_iterations, tolerance)
