"""Link-analysis extras: HITS and harmonic centrality.

Both belong to the "spectral" / "geodesic" families the paper's section
IV-C names as consumers of projected graphs; both are cross-validated
against NetworkX in the tests.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Tuple

from repro.algorithms.digraph import DiGraph
from repro.errors import ConvergenceError

__all__ = ["hits", "harmonic_centrality"]


def hits(graph: DiGraph, max_iterations: int = 500,
         tolerance: float = 1.0e-10) -> Tuple[Dict[Hashable, float],
                                              Dict[Hashable, float]]:
    """Kleinberg's HITS: mutually reinforcing hub and authority scores.

    Returns ``(hubs, authorities)``, each L1-normalized like NetworkX.
    Weights are respected (authority gathers weighted hub mass).

    Raises
    ------
    ConvergenceError
        If the alternating iteration fails to converge.
    """
    n = graph.order()
    if n == 0:
        return {}, {}
    hubs = {v: 1.0 / n for v in graph.vertices()}
    for _ in range(max_iterations):
        previous = hubs
        authorities = {v: 0.0 for v in hubs}
        for v, hub_value in hubs.items():
            for successor, weight in graph.successor_weights(v).items():
                authorities[successor] += hub_value * weight
        hubs = {v: 0.0 for v in hubs}
        for v, auth_value in authorities.items():
            for predecessor, weight in graph.predecessor_weights(v).items():
                hubs[predecessor] += auth_value * weight
        norm = max(hubs.values()) or 1.0
        hubs = {v: value / norm for v, value in hubs.items()}
        if sum(abs(hubs[v] - previous[v]) for v in hubs) < n * tolerance:
            hub_total = sum(hubs.values()) or 1.0
            auth_total = sum(authorities.values()) or 1.0
            return ({v: value / hub_total for v, value in hubs.items()},
                    {v: value / auth_total for v, value in authorities.items()})
    raise ConvergenceError("hits", max_iterations, tolerance)


def harmonic_centrality(graph: DiGraph) -> Dict[Hashable, float]:
    """Harmonic centrality: ``sum over u != v of 1 / d(u, v)`` (incoming).

    The reciprocal-distance variant of closeness; well-defined on
    disconnected graphs (unreachable pairs contribute zero).  Matches
    NetworkX's convention of summing over incoming distances.
    """
    reverse = graph.reversed()
    out: Dict[Hashable, float] = {}
    for v in graph.vertices():
        total = 0.0
        for target, distance in reverse.bfs_distances(v).items():
            if target != v and distance > 0:
                total += 1.0 / distance
        out[v] = total
    return out
