"""A weighted directed graph — the single-relational substrate of section IV-C.

The paper's section IV-C feeds derived binary edge sets
``E' subseteq (V x V)`` to "all known single-relational graph algorithms".
This module is the substrate those algorithms run on: a minimal,
dependency-free weighted digraph.  It deliberately mirrors a subset of the
NetworkX DiGraph API (``add_edge``, ``successors``, ``out_degree``...) so the
test suite can cross-validate every algorithm against NetworkX on the same
data.

Weights default to 1.0; section IV-C projections use the number of witness
paths per pair as the weight (see :class:`repro.core.projection.BinaryProjection`).
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import VertexNotFoundError

__all__ = ["DiGraph"]


class DiGraph:
    """A simple weighted directed graph (no parallel edges, loops allowed)."""

    def __init__(self, edges: Iterable[Tuple[Hashable, Hashable]] = ()):
        self._succ: Dict[Hashable, Dict[Hashable, float]] = {}
        self._pred: Dict[Hashable, Dict[Hashable, float]] = {}
        self._version = 0
        # Structural mutation journal mirroring MultiRelationalGraph's: the
        # compact snapshot layer replays it to patch edge arrays in place of
        # a full O(V + E) rebuild.  Covers versions (_journal_floor, _version].
        self._journal: List[Tuple] = []
        self._journal_floor = 0
        for tail, head in edges:
            self.add_edge(tail, head)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Hashable) -> None:
        """Ensure ``vertex`` exists (idempotent)."""
        if vertex not in self._succ:
            self._succ[vertex] = {}
            self._pred[vertex] = {}
            self._version += 1
            self._journal_append(("+v", vertex))

    def add_edge(self, tail: Hashable, head: Hashable, weight: float = 1.0) -> None:
        """Add (or re-weight) the edge ``tail -> head``."""
        self.add_vertex(tail)
        self.add_vertex(head)
        self._succ[tail][head] = float(weight)
        self._pred[head][tail] = float(weight)
        self._version += 1
        self._journal_append(("+e", tail, head, float(weight)))

    def remove_edge(self, tail: Hashable, head: Hashable) -> None:
        """Remove one edge (KeyError if absent)."""
        del self._succ[tail][head]
        del self._pred[head][tail]
        self._version += 1
        self._journal_append(("-e", tail, head))

    def version(self) -> int:
        """A counter bumped by every mutation (cache-invalidation token).

        :mod:`repro.graph.compact` keys its :class:`CompactDiGraph`
        snapshots on this, mirroring ``MultiRelationalGraph.version()``.
        """
        return self._version

    # ------------------------------------------------------------------
    # Structural mutation journal (compact-snapshot delta source)
    # ------------------------------------------------------------------

    #: Same cap semantics as MultiRelationalGraph: past it the journal is
    #: dropped and snapshot consumers rebuild from scratch.
    _JOURNAL_CAP = 65536

    #: Kept in sync with ``repro.graph.compact._CACHE_ATTR``.
    _SNAPSHOT_CACHE_ATTR = "_compact_snapshot_cache"

    def _journal_append(self, entry: Tuple) -> None:
        """Record one structural op, tagged with the version it produced."""
        if not self._journal and \
                getattr(self, self._SNAPSHOT_CACHE_ATTR, None) is None:
            # Journaling starts lazily with the first snapshot build; until
            # then the pinned floor tells consumers the gap is uncovered.
            self._journal_floor = self._version
            return
        self._journal.append((self._version,) + entry)
        if len(self._journal) > self._JOURNAL_CAP:
            del self._journal[:]
            self._journal_floor = self._version

    def journal_since(self, version: int) -> Optional[List[Tuple]]:
        """Structural ops after ``version`` (``(version_after, op, *args)``),
        or ``None`` when the journal no longer reaches back that far.

        ``op`` is ``"+v"``, ``"+e"`` (payload includes the weight — re-adding
        an existing edge re-weights it) or ``"-e"``.
        """
        if version < self._journal_floor:
            return None
        return [entry for entry in self._journal if entry[0] > version]

    def prune_journal(self, version: int) -> None:
        """Drop journal entries at or before ``version`` (already consumed)."""
        if self._journal and self._journal[0][0] <= version:
            self._journal = [entry for entry in self._journal
                             if entry[0] > version]
        if version > self._journal_floor:
            self._journal_floor = version

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def vertices(self) -> FrozenSet[Hashable]:
        """All vertices."""
        return frozenset(self._succ)

    def edges(self) -> Iterator[Tuple[Hashable, Hashable, float]]:
        """All ``(tail, head, weight)`` triples."""
        for tail, targets in self._succ.items():
            for head, weight in targets.items():
                yield (tail, head, weight)

    def has_vertex(self, vertex: Hashable) -> bool:
        """True when the vertex exists."""
        return vertex in self._succ

    def has_edge(self, tail: Hashable, head: Hashable) -> bool:
        """True when ``tail -> head`` exists."""
        return tail in self._succ and head in self._succ[tail]

    def weight(self, tail: Hashable, head: Hashable) -> float:
        """The weight of one edge (KeyError if absent)."""
        return self._succ[tail][head]

    def successors(self, vertex: Hashable) -> FrozenSet[Hashable]:
        """Vertices one out-edge away."""
        self._require(vertex)
        return frozenset(self._succ[vertex])

    def predecessors(self, vertex: Hashable) -> FrozenSet[Hashable]:
        """Vertices one in-edge away (against direction)."""
        self._require(vertex)
        return frozenset(self._pred[vertex])

    def successor_weights(self, vertex: Hashable) -> Dict[Hashable, float]:
        """``head -> weight`` over the out-edges (a copy)."""
        self._require(vertex)
        return dict(self._succ[vertex])

    def predecessor_weights(self, vertex: Hashable) -> Dict[Hashable, float]:
        """``tail -> weight`` over the in-edges (a copy)."""
        self._require(vertex)
        return dict(self._pred[vertex])

    def out_degree(self, vertex: Hashable, weighted: bool = False) -> float:
        """Out-degree (count, or weight sum when ``weighted``)."""
        self._require(vertex)
        if weighted:
            return sum(self._succ[vertex].values())
        return len(self._succ[vertex])

    def in_degree(self, vertex: Hashable, weighted: bool = False) -> float:
        """In-degree (count, or weight sum when ``weighted``)."""
        self._require(vertex)
        if weighted:
            return sum(self._pred[vertex].values())
        return len(self._pred[vertex])

    def order(self) -> int:
        """``|V|``."""
        return len(self._succ)

    def size(self) -> int:
        """``|E|``."""
        return sum(len(targets) for targets in self._succ.values())

    def reversed(self) -> "DiGraph":
        """The transpose graph."""
        out = DiGraph()
        for v in self._succ:
            out.add_vertex(v)
        for tail, head, weight in self.edges():
            out.add_edge(head, tail, weight)
        return out

    def undirected_neighbors(self, vertex: Hashable) -> FrozenSet[Hashable]:
        """Successors and predecessors together."""
        return self.successors(vertex) | self.predecessors(vertex)

    def _require(self, vertex: Hashable) -> None:
        if vertex not in self._succ:
            raise VertexNotFoundError(vertex)

    # ------------------------------------------------------------------
    # Elementary traversals shared by the algorithm modules
    # ------------------------------------------------------------------

    #: Below this order the dict BFS wins; above it the vectorized kernel
    #: (when numpy is importable) is several times faster.
    _COMPACT_MIN_ORDER = 128

    def bfs_distances(self, source: Hashable) -> Dict[Hashable, int]:
        """Unweighted shortest-path distances from ``source`` (hops).

        Large graphs route through the compact-array frontier BFS
        (:class:`repro.graph.compact.CompactDiGraph`); the dict-based BFS
        below remains both the small-graph path and the no-numpy fallback.
        """
        self._require(source)
        from repro.graph.compact import digraph_snapshot_if_large
        snapshot = digraph_snapshot_if_large(self)
        if snapshot is not None:
            return snapshot.bfs_distances(source)
        return self._bfs_distances_dict(source)

    def _bfs_distances_dict(self, source: Hashable) -> Dict[Hashable, int]:
        """Reference dict-based BFS (always available; used by benchmarks)."""
        distances: Dict[Hashable, int] = {source: 0}
        queue: deque = deque([source])
        while queue:
            vertex = queue.popleft()
            for successor in self._succ[vertex]:
                if successor not in distances:
                    distances[successor] = distances[vertex] + 1
                    queue.append(successor)
        return distances

    def __len__(self) -> int:
        return self.order()

    def __contains__(self, vertex) -> bool:
        return vertex in self._succ

    def __repr__(self) -> str:
        return "DiGraph<|V|={}, |E|={}>".format(self.order(), self.size())
