"""Geodesic (shortest-path) machinery: distances, paths, eccentricity, diameter.

The "geodesics" family of section IV-C's algorithm inventory.  Unweighted
shortest paths use BFS; weighted use Dijkstra (non-negative weights).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.algorithms.digraph import DiGraph
from repro.errors import AlgorithmError

__all__ = [
    "shortest_path_lengths",
    "shortest_path",
    "all_pairs_shortest_lengths",
    "dijkstra",
    "eccentricity",
    "diameter",
    "average_path_length",
]


def shortest_path_lengths(graph: DiGraph, source: Hashable) -> Dict[Hashable, int]:
    """BFS hop distances from ``source`` to every reachable vertex."""
    return graph.bfs_distances(source)


def shortest_path(graph: DiGraph, source: Hashable,
                  target: Hashable) -> Optional[List[Hashable]]:
    """One unweighted shortest path as a vertex list, or None if unreachable."""
    if source == target:
        return [source]
    parents: Dict[Hashable, Hashable] = {source: source}
    queue: deque = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor in parents:
                continue
            parents[successor] = vertex
            if successor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(successor)
    return None


def all_pairs_shortest_lengths(graph: DiGraph) -> Dict[Hashable, Dict[Hashable, int]]:
    """BFS from every vertex: ``source -> {target -> hops}``."""
    return {v: graph.bfs_distances(v) for v in graph.vertices()}


def dijkstra(graph: DiGraph, source: Hashable) -> Dict[Hashable, float]:
    """Weighted shortest distances from ``source`` (non-negative weights).

    Raises
    ------
    AlgorithmError
        On encountering a negative edge weight.
    """
    distances: Dict[Hashable, float] = {source: 0.0}
    visited = set()
    heap: List[Tuple[float, int, Hashable]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _, vertex = heapq.heappop(heap)
        if vertex in visited:
            continue
        visited.add(vertex)
        for successor, weight in graph.successor_weights(vertex).items():
            if weight < 0:
                raise AlgorithmError(
                    "dijkstra requires non-negative weights (got {})".format(weight))
            candidate = distance + weight
            if successor not in distances or candidate < distances[successor]:
                distances[successor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, successor))
    return distances


def eccentricity(graph: DiGraph, vertex: Hashable) -> int:
    """Max hop distance from ``vertex`` over its reachable set.

    Raises
    ------
    AlgorithmError
        If the vertex reaches nothing (eccentricity undefined).
    """
    distances = graph.bfs_distances(vertex)
    if len(distances) <= 1:
        raise AlgorithmError(
            "eccentricity undefined: {!r} reaches no other vertex".format(vertex))
    return max(distances.values())


def diameter(graph: DiGraph) -> int:
    """Max eccentricity over vertices that can reach something.

    Computed over reachable pairs only (the graph need not be strongly
    connected); raises if no vertex reaches any other.
    """
    best = -1
    for v in graph.vertices():
        distances = graph.bfs_distances(v)
        if len(distances) > 1:
            best = max(best, max(distances.values()))
    if best < 0:
        raise AlgorithmError("diameter undefined on an edgeless graph")
    return best


def average_path_length(graph: DiGraph) -> float:
    """Mean hop distance over all reachable ordered pairs (excluding self)."""
    total = 0
    count = 0
    for v in graph.vertices():
        for target, distance in graph.bfs_distances(v).items():
            if target != v:
                total += distance
                count += 1
    if count == 0:
        raise AlgorithmError("average path length undefined: no reachable pairs")
    return total / float(count)
