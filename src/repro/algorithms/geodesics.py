"""Geodesic (shortest-path) machinery: distances, paths, eccentricity, diameter.

The "geodesics" family of section IV-C's algorithm inventory.  Unweighted
shortest paths use BFS; weighted use Dijkstra (non-negative weights).

Single-source queries route through :meth:`DiGraph.bfs_distances` (and so
inherit its compact-array fast path); the all-pairs sweeps —
:func:`all_pairs_shortest_lengths`, :func:`diameter`,
:func:`average_path_length` — additionally share one compact snapshot
across all sources and, for the scalar summaries, reduce each BFS level
array on the fly instead of materializing per-source dicts
(:meth:`repro.graph.compact.CompactDiGraph.geodesic_summary`).  Dict
implementations are kept as the small-graph path, the no-numpy fallback
and the differential-test reference.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.algorithms.digraph import DiGraph
from repro.errors import AlgorithmError
from repro.graph.compact import digraph_snapshot_if_large

__all__ = [
    "shortest_path_lengths",
    "shortest_path",
    "all_pairs_shortest_lengths",
    "dijkstra",
    "eccentricity",
    "diameter",
    "average_path_length",
]


def shortest_path_lengths(graph: DiGraph, source: Hashable) -> Dict[Hashable, int]:
    """BFS hop distances from ``source`` to every reachable vertex."""
    return graph.bfs_distances(source)


def shortest_path(graph: DiGraph, source: Hashable,
                  target: Hashable) -> Optional[List[Hashable]]:
    """One unweighted shortest path as a vertex list, or None if unreachable."""
    if source == target:
        return [source]
    parents: Dict[Hashable, Hashable] = {source: source}
    queue: deque = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor in parents:
                continue
            parents[successor] = vertex
            if successor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(successor)
    return None


def all_pairs_shortest_lengths(graph: DiGraph) -> Dict[Hashable, Dict[Hashable, int]]:
    """BFS from every vertex: ``source -> {target -> hops}``.

    Large graphs fetch the compact snapshot once and sweep every source
    over its CSR arrays, skipping the per-source threshold check and
    snapshot lookup ``graph.bfs_distances`` would repeat.
    """
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        return {v: snapshot.bfs_distances(v) for v in graph.vertices()}
    return {v: graph.bfs_distances(v) for v in graph.vertices()}


def dijkstra(graph: DiGraph, source: Hashable) -> Dict[Hashable, float]:
    """Weighted shortest distances from ``source`` (non-negative weights).

    Raises
    ------
    AlgorithmError
        On encountering a negative edge weight.
    """
    distances: Dict[Hashable, float] = {source: 0.0}
    visited = set()
    heap: List[Tuple[float, int, Hashable]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _, vertex = heapq.heappop(heap)
        if vertex in visited:
            continue
        visited.add(vertex)
        for successor, weight in graph.successor_weights(vertex).items():
            if weight < 0:
                raise AlgorithmError(
                    "dijkstra requires non-negative weights (got {})".format(weight))
            candidate = distance + weight
            if successor not in distances or candidate < distances[successor]:
                distances[successor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, successor))
    return distances


def eccentricity(graph: DiGraph, vertex: Hashable) -> int:
    """Max hop distance from ``vertex`` over its reachable set.

    Rides :meth:`DiGraph.bfs_distances` and therefore the compact CSR BFS
    on large graphs.

    Raises
    ------
    AlgorithmError
        If the vertex reaches nothing (eccentricity undefined).
    """
    distances = graph.bfs_distances(vertex)
    if len(distances) <= 1:
        raise AlgorithmError(
            "eccentricity undefined: {!r} reaches no other vertex".format(vertex))
    return max(distances.values())


def diameter(graph: DiGraph) -> int:
    """Max eccentricity over vertices that can reach something.

    Computed over reachable pairs only (the graph need not be strongly
    connected); raises if no vertex reaches any other.  Large graphs run
    the compact geodesic sweep (one CSR BFS per source, reduced on the
    fly); the dict sweep below is the fallback and reference.
    """
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        best = snapshot.geodesic_summary()[0]
    else:
        best = _diameter_dict(graph)
    if best < 0:
        raise AlgorithmError("diameter undefined on an edgeless graph")
    return best


def _diameter_dict(graph: DiGraph) -> int:
    """Reference dict sweep: max distance over reachable pairs, -1 if none."""
    best = -1
    for v in graph.vertices():
        distances = graph.bfs_distances(v)
        if len(distances) > 1:
            best = max(best, max(distances.values()))
    return best


def average_path_length(graph: DiGraph) -> float:
    """Mean hop distance over all reachable ordered pairs (excluding self).

    Shares the compact geodesic sweep with :func:`diameter` on large
    graphs; the dict sweep below is the fallback and reference.
    """
    snapshot = digraph_snapshot_if_large(graph)
    if snapshot is not None:
        _, total, count = snapshot.geodesic_summary()
    else:
        total, count = _average_path_length_sums_dict(graph)
    if count == 0:
        raise AlgorithmError("average path length undefined: no reachable pairs")
    return total / float(count)


def _average_path_length_sums_dict(graph: DiGraph) -> Tuple[int, int]:
    """Reference dict sweep: (distance total, pair count) over reachable
    ordered pairs excluding self."""
    total = 0
    count = 0
    for v in graph.vertices():
        for target, distance in graph.bfs_distances(v).items():
            if target != v:
                total += distance
                count += 1
    return total, count
