"""E6 — footnote 7: join vs product, and hash vs naive join.

Two claims measured:

* ``R ><_o Q subseteq R x_o Q`` and, when only joint paths are wanted, the
  join "is a more efficient use of resources" — the product materializes
  |R| * |Q| paths where the join materializes only the joint ones;
* our design choice (DESIGN.md section 5): the hash equijoin vs the
  definitional quadratic scan.
"""

import pytest

from repro.graph.generators import star_graph, uniform_random


@pytest.fixture(scope="module", params=[100, 400, 1600])
def operands(request):
    edges = request.param
    graph = uniform_random(max(10, edges // 10), edges,
                           labels=("a", "b"), seed=edges)
    return graph.edges(label="a"), graph.edges(label="b")


def test_e6_join_hash(benchmark, operands):
    left, right = operands
    result = benchmark(lambda: left.join(right))
    assert result <= left.product(right)


def test_e6_join_naive(benchmark, operands):
    """The definitional O(|A||B|) scan — the ablation baseline."""
    left, right = operands
    result = benchmark(lambda: left.join_naive(right))
    assert result == left.join(right)


def test_e6_product(benchmark, operands):
    """The product materializes every pair: |result| = |A| * |B|."""
    left, right = operands
    result = benchmark(lambda: left.product(right))
    assert len(result) == len(left) * len(right)


def test_e6_join_on_hub_skew(benchmark):
    """Hub graphs are the hash join's worst case (one giant bucket)."""
    hub_out = star_graph(300, label="a").edges(label="a")           # 0 -> leaves
    hub_in = star_graph(300, label="a", inward=True).edges(label="a")  # leaves -> 0
    result = benchmark(lambda: hub_in.join(hub_out))
    assert len(result) == 300 * 300
