"""E5 — section IV-C: the three projection methods feeding PageRank.

The paper's qualitative claim: M1 (ignore labels) is semantically mushy, M2
(one relation) discards structure, M3 (path projection) derives the
*intended* implicit relation.  We regenerate the comparison on the scholarly
graph: each method's projection is built and ranked, and the test asserts
the three genuinely disagree (different edge sets, different top vertices).
"""

import pytest

from repro.algorithms import pagerank
from repro.core.projection import (
    extract_relation,
    ignore_labels,
    project_label_sequence,
    project_paths,
)
from repro.datasets import scholarly_graph


@pytest.fixture(scope="module")
def graph():
    return scholarly_graph(num_authors=25, num_papers=60, seed=13)


def coauthorship(graph):
    authored = graph.edges(label="authored")
    return project_paths(authored @ authored.map(lambda p: p.reversed()),
                         description="co-authorship")


def test_e5_m1_ignore_labels(benchmark, graph):
    projection = benchmark(lambda: ignore_labels(graph))
    assert len(projection) > 0


def test_e5_m2_extract_relation(benchmark, graph):
    projection = benchmark(lambda: extract_relation(graph, "cites"))
    assert len(projection) > 0


def test_e5_m3_path_projection(benchmark, graph):
    projection = benchmark(lambda: coauthorship(graph))
    assert len(projection) > 0


def test_e5_m3_regular_author_citation(benchmark, graph):
    """authored . cites . authored^-1 — the richer M3 derivation."""
    authored = graph.edges(label="authored")
    cites = graph.edges(label="cites")
    inverse = authored.map(lambda p: p.reversed())

    def derive():
        return project_paths(authored @ cites @ inverse)

    projection = benchmark(derive)
    assert all(str(t).startswith("author") and str(h).startswith("author")
               for t, h in projection.pairs)


def test_e5_downstream_pagerank_disagrees_across_methods(benchmark, graph):
    """The full pipeline, and the paper's point: method choice changes the
    answer.  Rank authors by each method; assert the edge sets differ."""
    m1 = ignore_labels(graph)
    m2 = extract_relation(graph, "cites")
    m3 = coauthorship(graph)

    def rank_all():
        return (pagerank(m1.to_digraph()), pagerank(m2.to_digraph()),
                pagerank(m3.to_digraph()))

    ranks1, ranks2, ranks3 = benchmark(rank_all)
    assert m1.pairs != m2.pairs != m3.pairs
    # M3 ranks authors; M2 (citations) ranks papers — different universes.
    assert any(str(v).startswith("author") for v in ranks3)
    assert all(not str(v).startswith("author") for v in ranks2)
