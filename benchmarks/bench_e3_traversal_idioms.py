"""E3 — the section III traversal idioms at increasing depth.

Complete / source / destination / labeled traversals over a random graph:
the complete traversal's cost grows with the walk count (exponentially in
dense graphs), while the restricted idioms stay proportional to their
frontier — the reason the paper frames traversals as *restrictions* of E.
"""

import pytest

from repro.core.traversal import (
    between_traversal,
    complete_traversal,
    destination_traversal,
    labeled_traversal,
    source_traversal,
)


@pytest.mark.parametrize("length", [1, 2, 3])
def test_e3_complete_traversal(benchmark, small_random, length):
    result = benchmark(lambda: complete_traversal(small_random, length))
    assert all(len(p) == length for p in result)


@pytest.mark.parametrize("length", [2, 3, 4])
def test_e3_source_traversal(benchmark, medium_random, length):
    sources = {0, 1, 2}
    result = benchmark(lambda: source_traversal(medium_random, sources, length))
    assert result.tails() <= sources


@pytest.mark.parametrize("length", [2, 3])
def test_e3_destination_traversal(benchmark, medium_random, length):
    destinations = {0, 1, 2}
    result = benchmark(
        lambda: destination_traversal(medium_random, destinations, length))
    assert result.heads() <= destinations


def test_e3_between_traversal(benchmark, medium_random):
    result = benchmark(
        lambda: between_traversal(medium_random, {0, 1}, {2, 3}, 3))
    assert all(p.tail in {0, 1} and p.head in {2, 3} for p in result)


@pytest.mark.parametrize("length", [2, 3, 4])
def test_e3_labeled_traversal(benchmark, medium_random, length):
    sequence = [{"a"}, {"b"}, {"c"}, {"d"}][:length]
    result = benchmark(lambda: labeled_traversal(medium_random, sequence))
    for p in result:
        assert p.label_path == tuple(next(iter(s)) for s in sequence)


def test_e3_labeled_on_layered_dag(benchmark, layered):
    """The layered DAG's label sequence is the guaranteed full-depth route."""
    sequence = [{"step0"}, {"step1"}, {"step2"}, {"step3"}]
    result = benchmark(lambda: labeled_traversal(layered, sequence))
    assert len(result) > 0
