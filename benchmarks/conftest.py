"""Shared benchmark workloads.

Sizes are laptop-scale by design: the paper makes structural rather than
performance claims, so the benchmarks exist to (a) regenerate each paper
artifact and (b) measure the *relative* behaviour of our design choices
(hash vs naive join, strategies, planner) — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    layered_graph,
    preferential_attachment,
    uniform_random,
)


@pytest.fixture(scope="session")
def small_random():
    """~30 vertices / 120 edges / 3 labels — fits every strategy comfortably."""
    return uniform_random(30, 120, labels=("a", "b", "c"), seed=1)


@pytest.fixture(scope="session")
def medium_random():
    """~120 vertices / 600 edges / 4 labels — joins fan out noticeably."""
    return uniform_random(120, 600, labels=("a", "b", "c", "d"), seed=2)


@pytest.fixture(scope="session")
def hub_graph():
    """Preferential attachment: degree skew stresses join fan-out."""
    return preferential_attachment(150, edges_per_vertex=3, seed=3)


@pytest.fixture(scope="session")
def layered():
    """A 5-layer DAG whose labeled traversals are analytically predictable."""
    return layered_graph(5, 8, seed=4, connection_probability=0.4)
