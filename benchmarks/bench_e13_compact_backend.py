"""E13 — compact integer-indexed adjacency backend vs the seed hash indices.

Measures, on generated graphs of >= 10k edges across several label
distributions, the hot paths the compact backend rewrote:

* multi-source ``rpq_pairs``: frontier-set BFS over the (vertex, dfa-state)
  product on per-label CSR arrays vs the per-source product BFS over
  ``graph.match`` frozensets (``rpq_pairs_basic``),
* **selective RPQ scenarios** (point-to-point, vertex-bound prefix through
  the engine's constrained lowering, target-bound suffix): bidirectional /
  backward / constrained evaluation vs the all-sources forward sweep, each
  gated at >= 3x on a 12k-edge graph — sizes do not shrink under
  ``--quick``,
* ``DiGraph.bfs_distances``: vectorized level-synchronous BFS vs dict BFS,
* ``weakly_connected_components``: compact flood fill vs union-find,
* ``pagerank``: vectorized power iteration vs the dict loop,
* **mutation churn**: interleaved single-edge mutate-then-query loops with
  the incremental delta-overlay snapshots vs one full snapshot rebuild per
  mutation (the pre-incremental lifecycle, simulated by dropping the cache
  before each query).  The incremental mode is asserted faster — this is
  the regression gate for the snapshot/delta/compaction machinery,
* **pre-flight analysis**: the static query analysis layer
  (:mod:`repro.analysis.query`) wired into the engine — the warm
  pre-flight (diagnostics served from the DFA cache) must cost < 5% of a
  vertex-bound point query's end-to-end time, and a provably-empty query
  must short-circuit to the empty set **without dispatching any compact
  kernel** (proven by poisoning the kernels for the timed region, not
  inferred from timing) while clocking in far below the all-sources
  sweep it avoids,
* **persistence**: reopening a durable store (mmap'd CSR snapshot + WAL
  replay, :mod:`repro.storage`) vs rebuilding the same 12k-edge graph
  from its triple CSV, gated at >= 5x with identical query answers —
  the regression gate for the snapshot-store reopen path,
* **the async service tier** (:mod:`repro.service`): a warm result-cache
  hit through ``AsyncEngine.pairs`` must beat uncached evaluation >= 20x,
  the awaitable facade may add <= 10% over direct ``Engine.pairs`` on a
  cache-miss sweep, and a deadline set below a sweep's runtime must
  cancel near the budget with the very next query succeeding,
* **fault-hook tax**: the disarmed fault-injection hooks compiled into
  the storage/pool/service hot paths (:mod:`repro.faults`) must cost
  <= 2% of a hot persistent query — measured structurally (crossings
  per query x priced per-crossing cost), so the "zero overhead in
  production" claim is a gate, not a comment,
* **lock-witness tax**: the disarmed :class:`~repro.concurrency.OrderedLock`
  wrapper adopted by every lock-holding subsystem must cost <= 2% of a
  hot WAL-append + cached-query loop, measured the same structural way
  (acquisitions per loop counted by a briefly armed witness x the priced
  per-acquisition delta of the disarmed wrapper over a raw
  ``threading.Lock``),
* **sharded parallelism**: the all-sources RPQ sweep and the sharded
  pagerank power iteration on a 50k-edge graph, 4 fan-out workers
  (:mod:`repro.engine.parallel`) vs the single-core compact kernels,
  each gated at >= 1.5x with identical (for pagerank: bit-identical)
  answers; skipped when the machine has fewer than 4 cores.  Sizes do
  not shrink under ``--quick``.

Every comparison first asserts the two implementations return **identical
answers** (same pair sets, same distance maps, same components, same ranks
to 1e-9) — the speedup is measured on verified-equivalent results, not
asserted blind.

Run standalone (not under pytest-benchmark, so CI can smoke it cheaply)::

    PYTHONPATH=src python benchmarks/bench_e13_compact_backend.py          # full
    PYTHONPATH=src python benchmarks/bench_e13_compact_backend.py --quick  # CI smoke

``--json PATH`` additionally writes the whole run as one machine-readable
trajectory record (scenario rows, sizes, timings, speedups, the parallel
gate's outcome) — CI uploads it as the ``BENCH_e13.json`` artifact so the
bench history is a queryable series instead of scrollback.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import time

from repro.algorithms.components import (
    _weakly_connected_components_unionfind,
    weakly_connected_components,
)
from repro.algorithms.digraph import DiGraph
from repro.algorithms.pagerank import pagerank
from repro.graph.compact import _CACHE_ATTR, HAVE_NUMPY, adjacency_snapshot
from repro.graph.generators import preferential_attachment, uniform_random
from repro.rpq import (
    lconcat,
    lstar,
    lunion,
    rpq_pairs,
    rpq_pairs_basic,
    rpq_pairs_between,
    rpq_pairs_to_targets,
    sym,
)


def timed(function, repeat=1):
    """Best-of-N wall time; cheap workloads get extra runs to beat noise."""
    best = None
    result = None
    runs = 0
    while True:
        # Flush any pending cyclic-GC pass so no timed region absorbs a
        # collection scheduled by earlier allocations.
        gc.collect()
        started = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        runs += 1
        if runs >= repeat and (best > 0.25 or runs >= max(repeat, 3)):
            return result, best


def report(rows):
    width = max(len(name) for name, _, _ in rows)
    print()
    print("{:<{w}}  {:>10}  {:>10}  {:>8}".format(
        "hot path", "seed (s)", "compact(s)", "speedup", w=width))
    for name, seed_s, compact_s in rows:
        print("{:<{w}}  {:>10.4f}  {:>10.4f}  {:>7.1f}x".format(
            name, seed_s, compact_s, seed_s / compact_s, w=width))
    print()


def random_digraph(num_vertices, num_edges, seed):
    rng = random.Random(seed)
    graph = DiGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    while graph.size() < num_edges:
        graph.add_edge(rng.randrange(num_vertices), rng.randrange(num_vertices),
                       rng.choice((0.5, 1.0, 2.0)))
    return graph


def bench_rpq(graph, label, rows, quick):
    expressions = {
        "chain a.b": lconcat(sym("a"), sym("b")),
        "star a.b*": lconcat(sym("a"), lstar(sym("b"))),
        "union (a.b)|c*": lunion(lconcat(sym("a"), sym("b")), lstar(sym("c"))),
    }
    adjacency_snapshot(graph)  # build outside the timed region (cached after)
    warmup_sources = frozenset(list(graph.vertices())[:8])
    for name, expression in expressions.items():
        # Warm both code paths (bytecode + caches) on a tiny source set so
        # the timed region measures the traversal, not first-call overhead.
        rpq_pairs(graph, expression, sources=warmup_sources)
        rpq_pairs_basic(graph, expression, sources=warmup_sources)
        compact_answer, compact_s = timed(lambda: rpq_pairs(graph, expression))
        seed_answer, seed_s = timed(lambda: rpq_pairs_basic(graph, expression))
        assert compact_answer == seed_answer, \
            "rpq answer sets diverge on {} / {}".format(label, name)
        rows.append(("rpq_pairs[{}] {} ({} pairs)".format(
            label, name, len(compact_answer)), seed_s, compact_s))
        if quick:
            break


def bench_digraph(num_vertices, num_edges, rows, quick):
    graph = random_digraph(num_vertices, num_edges, seed=13)
    sources = list(range(0, num_vertices, max(1, num_vertices // (16 if quick else 64))))
    # Warm up outside the timed region: snapshot build + numpy one-time
    # machinery (np.unique's first call imports its hash-table backend).
    graph.bfs_distances(sources[0])
    weakly_connected_components(graph)

    def run_fast():
        return [graph.bfs_distances(s) for s in sources]

    def run_seed():
        return [graph._bfs_distances_dict(s) for s in sources]

    fast, compact_s = timed(run_fast)
    seed, seed_s = timed(run_seed)
    assert fast == seed, "bfs_distances diverge"
    rows.append(("bfs_distances x{} sources".format(len(sources)),
                 seed_s, compact_s))

    fast, compact_s = timed(lambda: weakly_connected_components(graph),
                            repeat=2 if quick else 3)
    seed, seed_s = timed(lambda: _weakly_connected_components_unionfind(graph),
                         repeat=2 if quick else 3)
    assert fast == seed, "components diverge"
    rows.append(("weakly_connected_components", seed_s, compact_s))

    fast, compact_s = timed(lambda: pagerank(graph))
    # Force the dict fallback by dropping below the compact threshold.
    original = DiGraph._COMPACT_MIN_ORDER
    DiGraph._COMPACT_MIN_ORDER = num_vertices + 1
    try:
        seed, seed_s = timed(lambda: pagerank(graph))
    finally:
        DiGraph._COMPACT_MIN_ORDER = original
    assert set(fast) == set(seed)
    assert max(abs(fast[v] - seed[v]) for v in fast) < 1.0e-9, \
        "pagerank ranks diverge"
    rows.append(("pagerank (power iteration)", seed_s, compact_s))


#: Selective RPQ scenarios must beat the all-sources forward sweep by at
#: least this factor — the acceptance gate for the directional kernels.
SELECTIVE_SPEEDUP_FLOOR = 3.0

#: Reopening a persistent store (mmap'd CSR snapshot + WAL replay) must
#: beat rebuilding the same graph from its triple CSV — parse, dict
#: indices, CSR build — by at least this factor, answering identically.
PERSISTENCE_SPEEDUP_FLOOR = 5.0


def bench_persistence(rows, quick):
    """Durable-store reopen vs rebuild-from-triples at >= 10k edges.

    One string-keyed 12k-edge graph is (a) written as triple CSV and (b)
    checkpointed into a persistent store.  The contest: answer a fixed
    selective RPQ batch starting from cold, either by re-parsing the CSV
    (dict store + CSR snapshot rebuilt from scratch) or by
    ``PersistentGraph.open`` (header read + ``np.memmap`` of the CSR
    arrays + empty-WAL replay).  Answers are asserted identical; the
    reopen must win by >= ``PERSISTENCE_SPEEDUP_FLOOR``x.  Sizes do not
    shrink under ``--quick`` — the gate is only meaningful at 10k+ edges.
    """
    import shutil
    import tempfile

    from repro.graph.graph import MultiRelationalGraph
    from repro.graph.io import read_triples, write_triples
    from repro.storage import PersistentGraph

    num_vertices, num_edges = 1500, 12000
    rng = random.Random(53)
    graph = MultiRelationalGraph(name="persist")
    for v in range(num_vertices):
        graph.add_vertex("v{}".format(v))
    while graph.size() < num_edges:
        graph.add_edge("v{}".format(rng.randrange(num_vertices)),
                       rng.choice("abc"),
                       "v{}".format(rng.randrange(num_vertices)))
    # A selective probe (few sources, bounded chain) keeps query time tiny
    # on both sides, so the timed contest measures cold-start cost — parse
    # + index + CSR build vs header read + mmap — not traversal time.
    expression = lconcat(sym("a"), sym("b"))
    sources = frozenset("v{}".format(rng.randrange(num_vertices))
                        for _ in range(4))

    workdir = tempfile.mkdtemp(prefix="bench-e13-persistence-")
    try:
        csv_path = workdir + "/graph.csv"
        write_triples(graph, csv_path)
        store_dir = workdir + "/store"
        PersistentGraph.create(store_dir, graph=graph).close()

        def run_rebuild():
            rebuilt = read_triples(csv_path)
            return rpq_pairs(rebuilt, expression, sources=sources)

        def run_reopen():
            with PersistentGraph.open(store_dir) as store:
                return store.pairs(expression, sources=sources)

        rebuild_answer, rebuild_s = timed(run_rebuild)
        reopen_answer, reopen_s = timed(run_reopen)
        assert reopen_answer == rebuild_answer, \
            "mmap reopen answers diverge from the rebuilt graph's"
        assert rebuild_s / reopen_s >= PERSISTENCE_SPEEDUP_FLOOR, \
            "mmap reopen ({:.4f}s) must beat rebuild-from-triples " \
            "({:.4f}s) by >= {}x on a {}-edge graph".format(
                reopen_s, rebuild_s, PERSISTENCE_SPEEDUP_FLOOR, num_edges)
        rows.append(("persistent reopen vs csv rebuild ({} edges)".format(
            num_edges), rebuild_s, reopen_s))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def bench_rpq_selective(rows, quick):
    """Point-to-point and vertex-bound RPQ scenarios at >= 10k edges.

    The regression gate for the direction-selecting evaluation path: on a
    12k-edge graph, a batch of bidirectional point-to-point probes, an
    engine-lowered vertex-bound prefix query (``[i, a, _] · R``), and a
    backward target-bound sweep must each beat the all-sources forward
    product BFS — what these queries cost before vertex-bound lowering and
    direction selection — by >= ``SELECTIVE_SPEEDUP_FLOOR``x, with every
    answer set first verified pair-for-pair against the full sweep.
    Sizes do **not** shrink under ``--quick``: the gate is only meaningful
    at 10k+ edges.
    """
    from repro.engine import Engine

    num_vertices, num_edges = 1500, 12000
    graph = uniform_random(num_vertices, num_edges, labels=("a", "b", "c"),
                           seed=43)
    expression = lconcat(sym("a"), lstar(sym("b")))
    adjacency_snapshot(graph)  # build outside every timed region
    vertices = sorted(graph.vertices())
    rng = random.Random(47)
    probes = [(rng.choice(vertices), rng.choice(vertices))
              for _ in range(4 if quick else 8)]

    full = rpq_pairs(graph, expression)  # warm + ground truth
    _, sweep_s = timed(lambda: rpq_pairs(graph, expression))

    def gate(name, selective_s):
        assert sweep_s / selective_s >= SELECTIVE_SPEEDUP_FLOOR, \
            "{} ({:.4f}s) must beat the all-sources forward sweep " \
            "({:.4f}s) by >= {}x on a {}-edge graph".format(
                name, selective_s, sweep_s, SELECTIVE_SPEEDUP_FLOOR,
                num_edges)
        rows.append((name, sweep_s, selective_s))

    # Meet-in-the-middle point-to-point: the whole probe batch together
    # must still clear the floor against one sweep.
    def run_bidirectional():
        return [rpq_pairs_between(graph, expression, {s}, {t})
                for s, t in probes]

    answers, bidirectional_s = timed(run_bidirectional)
    for (s, t), answer in zip(probes, answers):
        assert answer == frozenset(p for p in full if p == (s, t)), \
            "bidirectional answer diverges on probe ({!r}, {!r})".format(s, t)
    gate("rpq point-to-point x{} (bidirectional)".format(len(probes)),
         bidirectional_s)

    # Vertex-bound prefix through the engine: constrained lowering + DFA
    # cache + direction model, not just the raw kernel.
    engine = Engine(graph)
    source = probes[0][0]
    query = "[{}, a, _] . [_, b, _]*".format(source)
    engine.pairs(query)  # warm parse/stats/DFA caches
    answer, engine_s = timed(lambda: engine.pairs(query))
    assert answer == frozenset(p for p in full if p[0] == source), \
        "engine vertex-bound answer diverges from the full sweep"
    gate("rpq vertex-bound prefix (engine lowering)", engine_s)

    # Target-bound suffix: backward product BFS over the reverse CSR.
    target = probes[1][1]
    answer, backward_s = timed(
        lambda: rpq_pairs_to_targets(graph, expression, targets={target}))
    assert answer == frozenset(p for p in full if p[1] == target), \
        "backward answer diverges from the full sweep"
    gate("rpq target-bound suffix (backward)", backward_s)


#: Warm pre-flight analysis (diagnostics served from the engine's DFA
#: cache) must cost less than this fraction of a vertex-bound point
#: query's end-to-end time — the acceptance ceiling for wiring static
#: analysis into every ``Engine.pairs`` call.
PREFLIGHT_OVERHEAD_CEILING = 0.05


def bench_preflight(rows, quick):
    """Pre-flight query analysis: overhead ceiling + empty short-circuit.

    Two gates for the static-analysis layer on a 12k-edge graph:

    * the warm pre-flight (diagnostics out of the engine's DFA cache, the
      cost every repeated ``Engine.pairs`` call now pays) must stay under
      ``PREFLIGHT_OVERHEAD_CEILING`` of a vertex-bound point query's
      end-to-end time, and
    * a provably-empty query (a label that never occurs in the graph)
      must return the empty set **without any kernel dispatch** — proven
      by poisoning the compact kernels for the timed region, with a
      satisfiable probe first tripping the poison so the proof cannot be
      vacuous — while clocking in far below the all-sources sweep the
      short-circuit avoids.

    Sizes do not shrink under ``--quick``.
    """
    from repro.engine import Engine
    from repro.graph import compact as compact_module

    num_vertices, num_edges = 1500, 12000
    graph = uniform_random(num_vertices, num_edges, labels=("a", "b", "c"),
                           seed=59)
    expression = lconcat(sym("a"), lstar(sym("b")))
    adjacency_snapshot(graph)  # base CSR built outside every timed region
    engine = Engine(graph)
    source = sorted(graph.vertices())[0]
    point_query = "[{}, a, _] . [_, b, _]*".format(source)

    engine.pairs(point_query)  # warm parse/stats/DFA/diagnostics caches
    _, query_s = timed(lambda: engine.pairs(point_query), repeat=3)
    # One warm pre-flight is microseconds; time a batch and amortize so
    # the measurement rises above timer noise.
    batch = 1000
    _, batch_s = timed(
        lambda: [engine.preflight(expression) for _ in range(batch)],
        repeat=3)
    preflight_s = batch_s / batch
    assert preflight_s / query_s < PREFLIGHT_OVERHEAD_CEILING, \
        "warm pre-flight ({:.6f}s) must stay under {:.0%} of a point " \
        "query ({:.6f}s) on a {}-edge graph".format(
            preflight_s, PREFLIGHT_OVERHEAD_CEILING, query_s, num_edges)
    rows.append(("preflight (warm, amortized x{}) vs point query".format(
        batch), query_s, preflight_s))

    # Empty short-circuit: the sweep this query would have cost...
    _, sweep_s = timed(lambda: rpq_pairs(graph, expression))
    # ...versus the short-circuit, with every compact kernel poisoned so
    # a single dispatch fails loudly instead of skewing the timing.
    kernel_names = ("rpq_pairs_compact", "rpq_pairs_backward",
                    "rpq_pairs_bidirectional")
    saved = {name: getattr(compact_module, name) for name in kernel_names}

    def poisoned(*_args, **_kwargs):
        raise AssertionError("kernel dispatched for a provably-empty query")

    empty_engine = Engine(graph)
    for name in kernel_names:
        setattr(compact_module, name, poisoned)
    try:
        if HAVE_NUMPY:
            # Prove the poison is live: a satisfiable query must trip it.
            try:
                empty_engine.pairs("[_, a, _]")
            except AssertionError:
                pass
            else:
                raise AssertionError(
                    "kernel poison is not live; the short-circuit proof "
                    "would be vacuous")
        empty_answer, empty_s = timed(
            lambda: empty_engine.pairs("[_, a, _] . [_, zz, _]"), repeat=3)
    finally:
        for name, original in saved.items():
            setattr(compact_module, name, original)
    assert empty_answer == frozenset(), \
        "provably-empty query must answer with the empty set"
    rows.append(("rpq provably-empty short-circuit vs sweep", sweep_s,
                 empty_s))


#: Sharded fan-out must beat the single-core compact kernels by at least
#: this factor on the all-sources sweep and the pagerank iteration — the
#: acceptance gate for the parallel executor.
PARALLEL_SPEEDUP_FLOOR = 1.5

#: Worker count the parallel gate is measured at; machines with fewer
#: cores skip the scenario (a fan-out cannot beat one core on one core).
PARALLEL_WORKERS = 4


#: Disarmed fault hooks may tax a hot persistent query by at most this
#: fraction — the "zero-overhead in production" claim of repro.faults.
FAULT_HOOK_OVERHEAD_CEILING = 0.02

#: The disarmed OrderedLock wrapper may tax a hot WAL-append +
#: cached-query loop by at most this fraction — the same bargain the
#: fault hooks struck, gated for the lock-order witness of
#: repro.concurrency.
LOCK_WITNESS_OVERHEAD_CEILING = 0.02


def bench_faults(rows, quick):
    """Disarmed fault-injection hooks must stay under 2% of a hot query.

    Measured structurally, not by differencing two noisy end-to-end
    timings (a 2% delta drowns in run-to-run variance): an installed but
    *empty* :class:`~repro.faults.FaultPlan` counts how many hook
    crossings one hot ``PersistentGraph.pairs`` query performs, a tight
    loop prices a single disarmed crossing (the production path is one
    module-global load plus an ``is None`` test — the plan check only
    runs while chaos tests arm one), and the product of the two is gated
    against the measured query time.
    """
    import shutil
    import tempfile

    from repro.faults import FaultPlan, clear_plan, fault_hook, install_plan
    from repro.storage import PersistentGraph

    num_vertices, num_edges = (300, 2500) if quick else (600, 6000)
    graph = uniform_random(num_vertices, num_edges, labels=("a", "b", "c"),
                           seed=3)
    expression = lconcat(sym("a"), lstar(sym("b")))
    directory = tempfile.mkdtemp(prefix="bench-e13-faults-")
    try:
        store = PersistentGraph.create(os.path.join(directory, "g"), graph,
                                       name="bench")
        store.pairs(expression)  # warm snapshot/DFA caches
        # Crossings per query, counted by an installed-but-empty plan.
        probe = FaultPlan()
        install_plan(probe)
        try:
            store.pairs(expression)
            crossings = probe.hits
        finally:
            clear_plan()
        _, query_s = timed(lambda: store.pairs(expression), repeat=3)
        calls = 200_000
        def hook_loop():
            for _ in range(calls):
                fault_hook("wal.fsync")
        _, loop_s = timed(hook_loop, repeat=3)
        store.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    per_crossing = loop_s / calls
    hook_tax = crossings * per_crossing
    budget = query_s * FAULT_HOOK_OVERHEAD_CEILING
    print("faults: {} hook crossing(s) per hot query, {:.1f} ns each; "
          "tax {:.2e}s vs {:.2e}s budget".format(
              crossings, per_crossing * 1e9, hook_tax, budget))
    assert crossings >= 1, "the hot query crossed no fault site"
    assert hook_tax <= budget, \
        "disarmed fault hooks cost {:.3%} of a hot query (ceiling " \
        "{:.0%})".format(hook_tax / query_s, FAULT_HOOK_OVERHEAD_CEILING)
    rows.append(("faults: disarmed hook tax vs 2% budget", budget,
                 hook_tax))


def bench_locks(rows, quick):
    """Disarmed OrderedLocks must stay under 2% of a hot mutate+query loop.

    The witness wrapper promises the fault hooks' bargain: armed it
    records order edges, disarmed an acquisition is the raw lock plus
    one module-global load and an ``is None`` test.  Measured
    structurally like :func:`bench_faults` — differencing two noisy
    end-to-end timings would drown a 2% delta: a briefly armed witness
    counts acquisitions across a WAL-append + cached-query loop, a tight
    loop prices the *disarmed* wrapper's per-acquisition delta over a
    raw :class:`threading.Lock`, and the product is gated against the
    measured (disarmed) loop time.
    """
    import shutil
    import tempfile
    import threading

    from repro.concurrency import OrderedLock, installed_witness, \
        witness_scope
    from repro.storage import PersistentGraph

    num_vertices, num_edges = (300, 2500) if quick else (600, 6000)
    graph = uniform_random(num_vertices, num_edges, labels=("a", "b", "c"),
                           seed=3)
    expression = lconcat(sym("a"), lstar(sym("b")))
    directory = tempfile.mkdtemp(prefix="bench-e13-locks-")
    try:
        store = PersistentGraph.create(os.path.join(directory, "g"), graph,
                                       name="bench", sync="batch",
                                       batch_size=64)
        steps = 20 if quick else 40

        def hot_loop():
            for step in range(steps):
                store.add_edge(step % num_vertices, "a",
                               (step * 7) % num_vertices)
                store.pairs(expression)

        hot_loop()  # warm snapshot/DFA caches outside every measured run
        # Acquisitions per loop, counted by a briefly armed witness.
        # (Re-entrant re-acquires are exempt from the count, which only
        # makes the gate stricter: they still pay the disarmed wrapper.)
        with witness_scope() as witness:
            hot_loop()
            crossings = witness.acquisitions
        assert installed_witness() is None, \
            "the timed loop must run disarmed"
        _, loop_s = timed(hot_loop, repeat=3)
        calls = 200_000
        wrapped = OrderedLock("bench.locks")
        raw = threading.Lock()

        def wrapped_loop():
            for _ in range(calls):
                with wrapped:
                    pass

        def raw_loop():
            for _ in range(calls):
                with raw:
                    pass

        _, wrapped_s = timed(wrapped_loop, repeat=3)
        _, raw_s = timed(raw_loop, repeat=3)
        store.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    per_crossing = max(0.0, (wrapped_s - raw_s) / calls)
    lock_tax = crossings * per_crossing
    budget = loop_s * LOCK_WITNESS_OVERHEAD_CEILING
    print("locks: {} acquisition(s) per hot loop, {:+.1f} ns wrapper "
          "delta each; tax {:.2e}s vs {:.2e}s budget".format(
              crossings, per_crossing * 1e9, lock_tax, budget))
    assert crossings >= steps, \
        "the witnessed loop crossed suspiciously few ordered locks"
    assert lock_tax <= budget, \
        "disarmed OrderedLocks cost {:.3%} of a hot mutate+query loop " \
        "(ceiling {:.0%})".format(lock_tax / loop_s,
                                  LOCK_WITNESS_OVERHEAD_CEILING)
    rows.append(("locks: disarmed witness tax vs 2% budget", budget,
                 lock_tax))


#: A caught-up replica must replay the shipped log >= this many times
#: faster than the primary originally wrote it — catch-up after a
#: restart or re-bootstrap converges instead of chasing a moving tail.
REPLICA_APPLY_SPEEDUP_FLOOR = 5.0

#: A default-cadence tailing replica may tax the primary's query
#: latency by at most this fraction (best-of-N on both sides).
TAIL_POLL_OVERHEAD_CEILING = 0.02


def bench_replication(rows, quick):
    """WAL shipping (:mod:`repro.replication`): apply rate + tail tax.

    Two gates for the replication tier on a 10k-edge churn workload
    (sizes do not shrink under ``--quick``):

    * **catch-up**: a replica bootstrapping from the snapshot and
      replaying the shipped segment log must apply records >=
      ``REPLICA_APPLY_SPEEDUP_FLOOR``x faster than the primary's
      original mutation rate — the condition for a lagging replica to
      converge at all, and the headroom that keeps steady-state lag at
      one poll interval.  Answers are verified identical before timing
      counts.
    * **tail tax**: with a replica tailing at the default poll cadence
      over the in-process feed, the primary's query latency may rise by
      at most ``TAIL_POLL_OVERHEAD_CEILING`` (the ship path reads
      sealed bytes under its own lock — queries never wait on it).
    """
    import tempfile
    import threading

    from repro.replication import PrimaryFeed, ReplicaGraph, ReplicaTailer
    from repro.storage import PersistentGraph

    churn = 10_000
    with tempfile.TemporaryDirectory(prefix="bench-repl-") as scratch:
        store = PersistentGraph.create(
            os.path.join(scratch, "primary"), name="bench",
            replicate=True, sync="batch")
        rng = random.Random(13)
        edges = [(rng.randrange(1500), rng.choice(("a", "b", "c")),
                  rng.randrange(1500)) for _ in range(churn)]
        gc.collect()
        started = time.perf_counter()
        for tail, label, head in edges:
            store.add_edge(tail, label, head)
        store.flush()
        primary_s = time.perf_counter() - started
        feed = PrimaryFeed(store)
        records = store.segments.last_version

        def catch_up():
            replica = ReplicaGraph.bootstrap(
                os.path.join(scratch, "replica-timed"), feed)
            try:
                started = time.perf_counter()
                while True:
                    report = replica.poll_once(feed, max_bytes=1 << 22)
                    if report["at_end"] and report["lag_records"] == 0:
                        break
                elapsed = time.perf_counter() - started
                expression = lconcat(sym("a"), lstar(sym("b")))
                assert replica.pairs(expression) == \
                    rpq_pairs(store.graph(), expression), \
                    "replica answers diverged from the primary's"
                return elapsed
            finally:
                replica.close()

        # The bootstrap snapshot for an all-churn store is tiny (the
        # create-time snapshot is empty): the timed region is the log
        # replay itself.  Best of three to shake scheduler noise.
        replica_s = min(catch_up() for _ in range(3))
        assert primary_s / replica_s >= REPLICA_APPLY_SPEEDUP_FLOOR, \
            "replica applied {} records in {:.3f}s — only {:.1f}x the " \
            "primary's {:.3f}s mutation run (floor {:.0f}x)".format(
                records, replica_s, primary_s / replica_s, primary_s,
                REPLICA_APPLY_SPEEDUP_FLOOR)
        rows.append(("replication: {}-record catch-up vs primary "
                     "write run".format(records), primary_s, replica_s))

        # -- tail tax on primary query latency, default poll cadence.
        expression = lconcat(sym("a"), lstar(sym("b")))
        sources = frozenset(range(0, 256))

        def sweep():
            return rpq_pairs(store.graph(), expression, sources=sources)

        baseline_answer, baseline_s = timed(sweep, repeat=5)
        replica = ReplicaGraph.bootstrap(
            os.path.join(scratch, "replica-tail"), feed)
        tailer = ReplicaTailer(replica, feed)
        stop = threading.Event()
        thread = threading.Thread(target=tailer.run, args=(stop,),
                                  name="bench-replica-tail", daemon=True)
        thread.start()
        try:
            deadline = time.time() + 10.0
            while not tailer.state()["ready"] and time.time() < deadline:
                time.sleep(0.01)
            assert tailer.state()["ready"], "tailer never caught up"
            tailing_answer, tailing_s = timed(sweep, repeat=5)
        finally:
            stop.set()
            thread.join(timeout=10)
            replica.close()
        store.close()
        assert tailing_answer == baseline_answer
        overhead = tailing_s / baseline_s - 1.0
        assert overhead <= TAIL_POLL_OVERHEAD_CEILING, \
            "a default-cadence tailing replica added {:.1%} to primary " \
            "query latency ({:.4f}s vs {:.4f}s; ceiling {:.0%})".format(
                overhead, tailing_s, baseline_s,
                TAIL_POLL_OVERHEAD_CEILING)
        rows.append(("replication: primary query latency under tail "
                     "({:+.1%})".format(overhead), tailing_s, baseline_s))


def bench_parallel(rows, quick, record):
    """All-sources RPQ + sharded pagerank, 4 workers vs one core, 50k edges.

    The regression gate for the vertex-range sharding + fan-out/merge
    executor: on a 50k-edge generated graph the parallel all-sources
    product-BFS sweep and the shard-scattered pagerank power iteration
    must each beat their single-core compact kernels by >=
    ``PARALLEL_SPEEDUP_FLOOR``x with 4 workers.  Answers are verified
    first — the RPQ pair sets must be equal, the pagerank ranks
    bit-identical (the shard-ordered merge makes parallel float sums
    reproduce the serial ones exactly).  Sizes do **not** shrink under
    ``--quick``; the scenario is skipped (gate intact) when the machine
    has fewer than ``PARALLEL_WORKERS`` cores.
    """
    from repro.engine.parallel import ParallelExecutor
    from repro.rpq.evaluation import compile_rpq

    num_vertices, num_edges = 12000, 50000
    cpu = os.cpu_count() or 1
    record.update({"vertices": num_vertices, "edges": num_edges,
                   "workers": PARALLEL_WORKERS, "cpu_count": cpu,
                   "floor": PARALLEL_SPEEDUP_FLOOR, "skipped": None})
    if cpu < PARALLEL_WORKERS:
        record["skipped"] = "cpu_count {} < {} workers".format(
            cpu, PARALLEL_WORKERS)
        print("parallel scenario skipped: {}".format(record["skipped"]))
        return

    # The label mix and expression are tuned for compute-heavy sweeps:
    # the ``b`` sub-graph sits near the percolation threshold (deep but
    # bounded cones), while the rare trailing ``x`` keeps the answer set —
    # which the workers must pickle back — a small fraction of the
    # traversal work.  An answer-dominated query (``a.b*``) would measure
    # result serialization, not the fan-out.
    graph = uniform_random(num_vertices, num_edges,
                           labels=("a",) * 5 + ("b",) * 5 + ("c",) * 5
                           + ("d",) * 4 + ("x",), seed=61)
    expression = lconcat(sym("a"), lstar(sym("b")), sym("a"),
                         lstar(sym("b")), sym("x"))
    dfa = compile_rpq(expression, graph)
    adjacency_snapshot(graph)  # base CSR built outside every timed region

    single_answer, single_s = timed(lambda: rpq_pairs(graph, expression))
    serial = ParallelExecutor(graph, processes=1,
                              num_shards=PARALLEL_WORKERS)
    parallel = ParallelExecutor(graph, processes=PARALLEL_WORKERS)
    try:
        # Warm the pool (fork + snapshot staging) on a small-source probe
        # so the timed region measures the fan-out, not process startup.
        parallel.rpq_pairs(dfa, sources=frozenset(range(8)))
        parallel_answer, parallel_s = timed(lambda: parallel.rpq_pairs(dfa))
        assert parallel_answer == single_answer, \
            "parallel rpq pair set diverges from the single-core sweep"
        assert single_s / parallel_s >= PARALLEL_SPEEDUP_FLOOR, \
            "parallel all-sources rpq ({:.4f}s) must beat single-core " \
            "({:.4f}s) by >= {}x with {} workers on a {}-edge graph".format(
                parallel_s, single_s, PARALLEL_SPEEDUP_FLOOR,
                PARALLEL_WORKERS, num_edges)
        rows.append(("parallel rpq all-sources x{} workers ({} edges)".format(
            PARALLEL_WORKERS, num_edges), single_s, parallel_s))
        record["rpq_single_s"] = single_s
        record["rpq_parallel_s"] = parallel_s
        record["rpq_speedup"] = single_s / parallel_s

        pagerank_kwargs = {"tolerance": 1.0e-12}
        # Warm outside the timed region: the first parallel call re-forks
        # the pool with the sharded payload staged alongside the snapshot.
        parallel.pagerank(**pagerank_kwargs)
        serial_ranks, serial_s = timed(
            lambda: serial.pagerank(**pagerank_kwargs))
        parallel_ranks, parallel_pr_s = timed(
            lambda: parallel.pagerank(**pagerank_kwargs))
        assert parallel_ranks == serial_ranks, \
            "parallel pagerank ranks must be bit-identical to serial"
        assert serial_s / parallel_pr_s >= PARALLEL_SPEEDUP_FLOOR, \
            "parallel pagerank ({:.4f}s) must beat single-core " \
            "({:.4f}s) by >= {}x with {} workers on a {}-edge graph".format(
                parallel_pr_s, serial_s, PARALLEL_SPEEDUP_FLOOR,
                PARALLEL_WORKERS, num_edges)
        rows.append(("parallel pagerank x{} workers ({} edges)".format(
            PARALLEL_WORKERS, num_edges), serial_s, parallel_pr_s))
        record["pagerank_single_s"] = serial_s
        record["pagerank_parallel_s"] = parallel_pr_s
        record["pagerank_speedup"] = serial_s / parallel_pr_s
    finally:
        serial.close()
        parallel.close()


def _drop_snapshot_cache(graph):
    """Simulate the pre-incremental lifecycle: mutation == full invalidation."""
    if hasattr(graph, _CACHE_ATTR):
        delattr(graph, _CACHE_ATTR)


def bench_rpq_churn(rows, quick):
    """Interleaved single-edge mutations and rpq queries on the MRG.

    Same deterministic mutation walk in both modes; the only difference is
    whether the snapshot is patched from the journal (incremental) or
    rebuilt from scratch before every query (rebuild).  Answers are
    asserted identical, and incremental is asserted faster — at full size
    the graph carries >= 10k edges, the acceptance bar for the delta
    machinery.
    """
    num_vertices, num_edges = (600, 2500) if quick else (1200, 12000)
    steps = 12 if quick else 40
    expression = lconcat(sym("a"), lstar(sym("b")))

    def run(mode):
        graph = uniform_random(num_vertices, num_edges,
                               labels=("a", "b", "c"), seed=17)
        vertices = sorted(graph.vertices(), key=repr)
        sources = frozenset(random.Random(23).sample(vertices, 16))
        rpq_pairs(graph, expression, sources=sources)  # warm base snapshot
        answers = []
        gc.collect()
        started = time.perf_counter()
        for step in range(steps):
            tail = vertices[(step * 37) % len(vertices)]
            head = vertices[(step * 61 + 13) % len(vertices)]
            if graph.has_edge(tail, "a", head):
                graph.remove_edge(tail, "a", head)
            else:
                graph.add_edge(tail, "a", head)
            if mode == "rebuild":
                _drop_snapshot_cache(graph)
            answers.append(rpq_pairs(graph, expression, sources=sources))
        return answers, time.perf_counter() - started

    incremental_answers, incremental_s = run("incremental")
    rebuild_answers, rebuild_s = run("rebuild")
    assert incremental_answers == rebuild_answers, \
        "rpq churn answers diverge between incremental and rebuild modes"
    assert incremental_s < rebuild_s, \
        "incremental snapshots ({:.4f}s) must beat {} full rebuilds " \
        "({:.4f}s) on a {}-edge graph".format(
            incremental_s, steps, rebuild_s, num_edges)
    rows.append(("rpq churn x{} mutate+query ({} edges)".format(
        steps, num_edges), rebuild_s, incremental_s))


def bench_digraph_churn(rows, quick):
    """Interleaved single-edge mutations and BFS queries on the DiGraph."""
    num_vertices, num_edges = (800, 5000) if quick else (1500, 15000)
    steps = 12 if quick else 40

    def run(mode):
        graph = random_digraph(num_vertices, num_edges, seed=29)
        rng = random.Random(31)
        graph.bfs_distances(0)  # warm base snapshot
        answers = []
        gc.collect()
        started = time.perf_counter()
        for step in range(steps):
            tail = rng.randrange(num_vertices)
            head = rng.randrange(num_vertices)
            if graph.has_edge(tail, head):
                graph.remove_edge(tail, head)
            else:
                graph.add_edge(tail, head)
            if mode == "rebuild":
                _drop_snapshot_cache(graph)
            answers.append(graph.bfs_distances(step % num_vertices))
        return answers, time.perf_counter() - started

    incremental_answers, incremental_s = run("incremental")
    rebuild_answers, rebuild_s = run("rebuild")
    assert incremental_answers == rebuild_answers, \
        "digraph churn answers diverge between incremental and rebuild modes"
    assert incremental_s < rebuild_s, \
        "incremental digraph snapshots ({:.4f}s) must beat {} full " \
        "rebuilds ({:.4f}s)".format(incremental_s, steps, rebuild_s)
    rows.append(("digraph churn x{} mutate+bfs ({} edges)".format(
        steps, num_edges), rebuild_s, incremental_s))


#: A warm result-cache hit served through the async service tier must
#: beat recomputing the same query uncached by at least this factor.
SERVICE_CACHE_SPEEDUP_FLOOR = 20.0

#: Awaiting a cache-miss query through AsyncEngine (slot admission +
#: executor round trip + deadline plumbing) may cost at most this fraction
#: over calling the blocking ``Engine.pairs`` directly.
SERVICE_ASYNC_OVERHEAD_CEILING = 0.10


def bench_service(rows, quick):
    """The async service tier: cache wins, facade overhead, deadline cuts.

    Three gates for :mod:`repro.service` on the 12k-edge graph:

    * a warm result-cache hit through ``AsyncEngine.pairs`` (the loop-side
      fast path — no executor round trip, no slot) must beat the uncached
      evaluation by >= ``SERVICE_CACHE_SPEEDUP_FLOOR``x,
    * on a **cache-miss** source-restricted sweep (~tens of ms of kernel
      work) the awaitable facade must add at most
      ``SERVICE_ASYNC_OVERHEAD_CEILING`` over direct ``Engine.pairs``, and
    * a per-query deadline set well below a sweep's runtime must cancel
      reliably — :class:`DeadlineExceededError` near the budget, not near
      the sweep time — and the very next query on the same engine must
      succeed (an abandoned kernel cannot poison the shared executor).

    Sizes do not shrink under ``--quick``: dispatch overhead is only
    meaningful against a realistically sized kernel.
    """
    import asyncio

    from repro.engine import Engine, QueryCache
    from repro.errors import DeadlineExceededError
    from repro.service import AsyncEngine

    num_vertices, num_edges = 1500, 12000
    graph = uniform_random(num_vertices, num_edges, labels=("a", "b", "c"),
                           seed=67)
    adjacency_snapshot(graph)  # base CSR built outside every timed region
    vertices = sorted(graph.vertices())
    query = "[_, a, _] . [_, b, _]*"
    miss_sources = vertices[:16]

    # -- facade overhead on a cache-miss query (no cache: always a miss).
    uncached = Engine(graph)
    uncached.pairs(query, sources=miss_sources)  # warm parse/DFA caches
    calls = 3 if quick else 6

    def run_direct():
        for _ in range(calls):
            uncached.pairs(query, sources=miss_sources)

    async def run_awaited_once(service):
        for _ in range(calls):
            await service.pairs(query, sources=miss_sources)

    def run_awaited():
        async def main():
            async with AsyncEngine(uncached, max_workers=2) as service:
                await service.pairs(query, sources=miss_sources)  # warm
                gc.collect()
                started = time.perf_counter()
                await run_awaited_once(service)
                return time.perf_counter() - started
        return asyncio.run(main())

    _, direct_s = timed(run_direct)
    awaited_s = min(run_awaited() for _ in range(3))
    overhead = awaited_s / direct_s - 1.0
    assert overhead <= SERVICE_ASYNC_OVERHEAD_CEILING, \
        "AsyncEngine facade adds {:.1%} over direct Engine.pairs " \
        "({:.4f}s vs {:.4f}s for {} cache-miss calls); ceiling is " \
        "{:.0%}".format(overhead, awaited_s, direct_s, calls,
                        SERVICE_ASYNC_OVERHEAD_CEILING)
    rows.append(("service facade x{} cache-miss calls ({:+.1%})".format(
        calls, overhead), awaited_s, direct_s))

    # -- warm cache hit through the service vs uncached evaluation.
    cached_engine = Engine(graph, cache=QueryCache(capacity=16))

    async def cache_contest():
        async with AsyncEngine(cached_engine, max_workers=2) as service:
            await service.pairs(query, sources=miss_sources)  # fill
            hits_before = service.counters["cache_fast_hits"]
            gc.collect()
            started = time.perf_counter()
            repeats = 20
            for _ in range(repeats):
                await service.pairs(query, sources=miss_sources)
            hit_s = (time.perf_counter() - started) / repeats
            assert service.counters["cache_fast_hits"] \
                == hits_before + repeats, "warm queries must hit the " \
                "loop-side cache fast path"
            return hit_s

    hit_s = asyncio.run(cache_contest())
    miss_s = direct_s / calls
    assert miss_s / hit_s >= SERVICE_CACHE_SPEEDUP_FLOOR, \
        "warm service cache hit ({:.6f}s) must beat uncached evaluation " \
        "({:.6f}s) by >= {}x".format(hit_s, miss_s,
                                     SERVICE_CACHE_SPEEDUP_FLOOR)
    rows.append(("service warm cache hit vs uncached query", miss_s, hit_s))

    # -- deadlines cancel reliably, and the engine survives them.
    async def deadline_contest():
        sweep_sources = vertices[:64]
        async with AsyncEngine(Engine(graph), max_workers=2) as service:
            await service.pairs(query, sources=sweep_sources)  # warm
            gc.collect()
            started = time.perf_counter()
            _, sweep_s = timed(lambda: service.engine.pairs(
                query, sources=sweep_sources))
            budget = max(0.005, sweep_s / 4.0)
            started = time.perf_counter()
            try:
                await service.pairs(query, sources=sweep_sources,
                                    deadline=budget)
            except DeadlineExceededError:
                cancelled_s = time.perf_counter() - started
            else:
                raise AssertionError(
                    "a {:.4f}s deadline under a {:.4f}s sweep must "
                    "cancel".format(budget, sweep_s))
            assert cancelled_s < sweep_s * 0.75, \
                "cancellation fired at {:.4f}s — near the sweep time " \
                "({:.4f}s), not the {:.4f}s budget".format(
                    cancelled_s, sweep_s, budget)
            # The shared executor is not poisoned: next query answers.
            follow_up = await service.pairs(query, sources=miss_sources)
            assert follow_up == uncached.pairs(query, sources=miss_sources)
            return sweep_s, cancelled_s

    sweep_s, cancelled_s = asyncio.run(deadline_contest())
    rows.append(("service deadline cut vs full sweep", sweep_s, cancelled_s))


def write_json_record(path, args, rows, parallel_record):
    """Spill the run as one machine-readable trajectory record."""
    record = {
        "bench": "e13_compact_backend",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": bool(args.quick),
        "cpu_count": os.cpu_count(),
        "have_numpy": HAVE_NUMPY,
        "gates": {
            "selective_speedup_floor": SELECTIVE_SPEEDUP_FLOOR,
            "preflight_overhead_ceiling": PREFLIGHT_OVERHEAD_CEILING,
            "persistence_speedup_floor": PERSISTENCE_SPEEDUP_FLOOR,
            "parallel_speedup_floor": PARALLEL_SPEEDUP_FLOOR,
            "service_cache_speedup_floor": SERVICE_CACHE_SPEEDUP_FLOOR,
            "service_async_overhead_ceiling": SERVICE_ASYNC_OVERHEAD_CEILING,
            "fault_hook_overhead_ceiling": FAULT_HOOK_OVERHEAD_CEILING,
            "lock_witness_overhead_ceiling": LOCK_WITNESS_OVERHEAD_CEILING,
            "replica_apply_speedup_floor": REPLICA_APPLY_SPEEDUP_FLOOR,
            "tail_poll_overhead_ceiling": TAIL_POLL_OVERHEAD_CEILING,
        },
        "rows": [
            {"scenario": name, "baseline_s": baseline, "contender_s": fast,
             "speedup": baseline / fast}
            for name, baseline, fast in rows
        ],
        "parallel": parallel_record,
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(record, stream, indent=2)
        stream.write("\n")
    print("wrote trajectory record to {}".format(path))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes + one expression per family (CI smoke)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the run as a JSON trajectory record")
    args = parser.parse_args()

    if args.quick:
        workloads = [
            ("uniform", uniform_random(400, 2500, labels=("a", "b", "c"), seed=5)),
        ]
        digraph_size = (800, 5000)
    else:
        workloads = [
            # >= 10k edges each, three very different label distributions.
            ("uniform", uniform_random(1200, 12000, labels=("a", "b", "c"), seed=5)),
            ("skewed", uniform_random(1200, 12000,
                                      labels=("a",) * 6 + ("b", "c"), seed=7)),
            ("hub", preferential_attachment(2500, edges_per_vertex=4,
                                            labels=("a", "b", "c"), seed=11)),
        ]
        digraph_size = (1500, 15000)

    rows = []
    parallel_record = {}
    for label, graph in workloads:
        print("graph[{}]: {!r}".format(label, graph))
        bench_rpq(graph, label, rows, args.quick)
    bench_rpq_selective(rows, args.quick)
    bench_preflight(rows, args.quick)
    if HAVE_NUMPY:
        bench_digraph(digraph_size[0], digraph_size[1], rows, args.quick)
    else:
        print("numpy unavailable: DiGraph kernels fall back to the seed "
              "implementations, skipping their comparison")
    bench_rpq_churn(rows, args.quick)
    if HAVE_NUMPY:
        bench_digraph_churn(rows, args.quick)
    bench_persistence(rows, args.quick)
    bench_service(rows, args.quick)
    bench_replication(rows, args.quick)
    bench_faults(rows, args.quick)
    bench_locks(rows, args.quick)
    bench_parallel(rows, args.quick, parallel_record)
    report(rows)
    print("all compact/seed answer sets identical; "
          "incremental churn beats full rebuilds; "
          "selective rpq scenarios beat the all-sources sweep >= {}x; "
          "warm pre-flight stays under {:.0%} of a point query and "
          "provably-empty queries short-circuit with zero kernel "
          "dispatch; "
          "persistent reopen beats csv rebuild >= {}x; "
          "service cache hits beat uncached >= {}x, facade overhead "
          "<= {:.0%}, deadlines cancel with a live follow-up; "
          "replica catch-up replays the shipped log >= {}x the "
          "primary's write rate with a tail tax <= {:.0%} on primary "
          "query latency; "
          "disarmed fault hooks tax a hot query <= {:.0%}; "
          "disarmed ordered locks tax a hot mutate+query loop <= {:.0%}; "
          "sharded fan-out beats single-core >= {}x at {} workers "
          "(or skipped on small machines)".format(
              SELECTIVE_SPEEDUP_FLOOR, PREFLIGHT_OVERHEAD_CEILING,
              PERSISTENCE_SPEEDUP_FLOOR, SERVICE_CACHE_SPEEDUP_FLOOR,
              SERVICE_ASYNC_OVERHEAD_CEILING,
              REPLICA_APPLY_SPEEDUP_FLOOR, TAIL_POLL_OVERHEAD_CEILING,
              FAULT_HOOK_OVERHEAD_CEILING,
              LOCK_WITNESS_OVERHEAD_CEILING, PARALLEL_SPEEDUP_FLOOR,
              PARALLEL_WORKERS))
    if args.json:
        write_json_record(args.json, args, rows, parallel_record)


if __name__ == "__main__":
    main()
