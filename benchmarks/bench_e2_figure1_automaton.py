"""E2/E4 — the Figure 1 automaton: recognition and generation.

Regenerates the paper's only figure: the regular path expression is
recognized (section IV-A) and generated (section IV-B) over the Figure 1
graph, comparing the production per-path generator against the paper's
verbatim whole-set stack automaton.
"""

import pytest

from repro.automata import Recognizer, StackAutomaton, generate_paths
from repro.datasets.paper import figure1_expression, figure1_graph

MAX_LENGTH = 6


@pytest.fixture(scope="module")
def graph():
    return figure1_graph()


@pytest.fixture(scope="module")
def expression():
    return figure1_expression()


@pytest.fixture(scope="module")
def member_paths(graph, expression):
    return list(generate_paths(graph, expression, MAX_LENGTH))


def test_e2_recognize_members(benchmark, graph, expression, member_paths):
    """Recognition cost over every generated member path."""
    recognizer = Recognizer(expression, graph)

    def recognize_all():
        return sum(1 for p in member_paths if recognizer.accepts(p))

    accepted = benchmark(recognize_all)
    assert accepted == len(member_paths)


def test_e2_generate_per_path(benchmark, graph, expression, member_paths):
    """Section IV-B generation via the per-path product construction."""
    result = benchmark(lambda: generate_paths(graph, expression, MAX_LENGTH))
    assert len(result) == len(member_paths)


def test_e2_generate_stack_automaton(benchmark, graph, expression, member_paths):
    """Section IV-B generation via the paper's verbatim stack automaton.

    Expected slower than the per-path search (whole path-sets on the stack
    dedupe poorly) — the comparison is the point.
    """
    automaton = StackAutomaton(expression, graph)
    result = benchmark(lambda: automaton.run(MAX_LENGTH))
    assert len(result) == len(member_paths)


@pytest.mark.parametrize("bound", [4, 6, 8])
def test_e2_generation_vs_bound(benchmark, graph, expression, bound):
    """Result growth as the star bound rises (the beta cycle is infinite)."""
    result = benchmark(lambda: generate_paths(graph, expression, bound))
    assert all(len(p) <= bound for p in result)
