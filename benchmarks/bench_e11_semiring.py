"""E11 — the semiring lift vs explicit path materialization.

The Counting-semiring composition answers "how many alpha-beta paths link
u to w" *without materializing any path* — the weighted relation stays
O(|pairs|) where the path set is O(|paths|).  This ablation times both
routes to the same answer (asserted equal every run), plus the tropical
closure against Dijkstra.
"""

import pytest

from repro.algorithms import DiGraph, dijkstra
from repro.core.projection import project_label_sequence
from repro.graph.generators import uniform_random
from repro.semiring import COUNTING, TROPICAL, WeightedRelation, label_sequence_weights


@pytest.fixture(scope="module")
def graph():
    return uniform_random(80, 500, labels=("alpha", "beta"), seed=23)


def test_e11_counting_via_semiring(benchmark, graph):
    relation = benchmark(
        lambda: label_sequence_weights(graph, ["alpha", "beta"], COUNTING))
    assert len(relation) > 0


def test_e11_counting_via_materialized_paths(benchmark, graph):
    projection = benchmark(
        lambda: project_label_sequence(graph, ["alpha", "beta"]))
    # Same answer through both routes.
    relation = label_sequence_weights(graph, ["alpha", "beta"], COUNTING)
    assert relation.support() == projection.pairs
    for pair, count in projection.weights.items():
        assert relation.weight(*pair) == count


def test_e11_tropical_closure(benchmark, graph):
    """All-pairs label-blind shortest hop counts via the tropical star."""
    base = WeightedRelation(
        TROPICAL, {e.endpoints(): 1.0 for e in graph.edge_set()})
    closure = benchmark(lambda: base.star(max_steps=graph.order()))
    # Cross-check a handful of sources against Dijkstra.
    digraph = DiGraph(e.endpoints() for e in graph.edge_set())
    for source in list(digraph.vertices())[:3]:
        for target, distance in dijkstra(digraph, source).items():
            if source != target:
                assert closure.weight(source, target) == distance
