"""E7 — the ternary algebra vs the binary-relation baseline [4].

Same 2-step cross-relation join through both algebras.  The binary algebra
is marginally cheaper per operation (vertex strings are shorter than edge
strings) — and that small saving is exactly what the paper trades away to
keep path labels recoverable.  The assertions verify endpoint agreement and
the label-loss asymmetry every run.
"""

import pytest

from repro.core.binary import LabelLossError, binary_relations
from repro.graph.generators import uniform_random


@pytest.fixture(scope="module")
def graph():
    return uniform_random(60, 400, labels=("alpha", "beta"), seed=21)


def test_e7_ternary_join(benchmark, graph):
    alpha = graph.edges(label="alpha")
    beta = graph.edges(label="beta")
    result = benchmark(lambda: alpha.join(beta))
    # The ternary result can always answer the label question.
    assert all(p.label_path == ("alpha", "beta") for p in result)


def test_e7_binary_join(benchmark, graph):
    relations = binary_relations(graph)
    alpha, beta = relations["alpha"], relations["beta"]
    result = benchmark(lambda: alpha.join(beta))
    # ... whereas the binary result cannot.
    some = next(iter(result))
    with pytest.raises(LabelLossError):
        some.label_path()


def test_e7_endpoint_agreement(benchmark, graph):
    """Both algebras agree on reachability — labels are the only casualty."""
    relations = binary_relations(graph)

    def both():
        ternary = graph.edges(label="alpha") @ graph.edges(label="beta")
        binary = relations["alpha"] @ relations["beta"]
        return ternary.endpoint_pairs(), binary.endpoint_pairs()

    ternary_pairs, binary_pairs = benchmark(both)
    assert ternary_pairs == binary_pairs
