"""E8 — engine strategy ablation: materialized vs streaming vs automaton vs stack.

One PathQL workload over one graph, executed by all four strategies (results
asserted identical), plus the streaming strategy's ``limit`` advantage: with
``limit=5`` the lazy pipeline should beat any strategy that computes the
full result first.
"""

import pytest

from repro.engine import Engine

QUERIES = {
    "chain": "[_, a, _] . [_, b, _] . [_, c, _]",
    "star": "[0, _, _] . [_, a, _]* . [_, b, _]",
    "union": "([_, a, _] . [_, b, _]) | ([_, b, _] . [_, c, _])",
}


@pytest.fixture(scope="module")
def engine(small_random):
    return Engine(small_random, default_max_length=5)


@pytest.fixture(scope="module")
def reference(engine):
    return {name: engine.query(q).paths for name, q in QUERIES.items()}


@pytest.mark.parametrize("strategy", ["materialized", "streaming", "automaton", "stack"])
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_e8_strategy(benchmark, engine, reference, strategy, query_name):
    query = QUERIES[query_name]
    result = benchmark(lambda: engine.query(query, strategy=strategy))
    assert result.paths == reference[query_name]


def test_e8_streaming_with_limit(benchmark, engine):
    """limit=5: the pipeline's early exit is its reason to exist."""
    query = QUERIES["chain"]
    result = benchmark(
        lambda: engine.query(query, strategy="streaming", limit=5))
    assert len(result.paths) <= 5


def test_e8_materialized_with_limit_pays_full_cost(benchmark, engine):
    """The contrast case: materialized computes everything, then truncates."""
    query = QUERIES["chain"]
    result = benchmark(
        lambda: engine.query(query, strategy="materialized", limit=5))
    assert len(result.paths) <= 5
