"""E10 — label-level RPQ (the [8] formulation) vs the paper's edge-level one.

The label formulation compiles to a DFA over the finite alphabet Omega and
evaluates by product reachability; the edge formulation runs the NFA over
edge sets.  Results are asserted identical via the lifting theorem
(:func:`lift_to_edge_expression`); the timing comparison shows what the
paper's extra generality (per-edge atoms like ``[i, a, _]``, literal path
sets, products) costs on queries both can express.
"""

import pytest

from repro.automata import generate_paths
from repro.graph.generators import uniform_random
from repro.rpq import (
    lconcat,
    lift_to_edge_expression,
    lstar,
    lunion,
    regular_simple_paths,
    rpq_pairs,
    rpq_paths,
    sym,
)

MAX_LENGTH = 4

EXPRESSIONS = {
    "chain": lconcat(sym("a"), sym("b")),
    "star": lconcat(sym("a"), lstar(sym("b"))),
    "union": lunion(lconcat(sym("a"), sym("b")), lconcat(sym("b"), sym("c"))),
}


@pytest.fixture(scope="module")
def graph():
    return uniform_random(60, 300, labels=("a", "b", "c"), seed=17)


@pytest.mark.parametrize("name", sorted(EXPRESSIONS))
def test_e10_label_dfa_paths(benchmark, graph, name):
    expr = EXPRESSIONS[name]
    result = benchmark(lambda: rpq_paths(graph, expr, MAX_LENGTH))
    assert result == generate_paths(graph, lift_to_edge_expression(expr),
                                    MAX_LENGTH)


@pytest.mark.parametrize("name", sorted(EXPRESSIONS))
def test_e10_edge_nfa_paths(benchmark, graph, name):
    expr = lift_to_edge_expression(EXPRESSIONS[name])
    result = benchmark(lambda: generate_paths(graph, expr, MAX_LENGTH))
    assert len(result) >= 0


def test_e10_pairs_only_is_cheaper(benchmark, graph):
    """Answering just (source, target) pairs avoids path materialization."""
    expr = EXPRESSIONS["star"]
    pairs = benchmark(lambda: rpq_pairs(graph, expr))
    materialized = rpq_paths(graph, expr, MAX_LENGTH)
    # Every bounded witness's endpoints appear among the pair answers.
    assert materialized.endpoint_pairs() <= pairs


def test_e10_regular_simple_paths(benchmark, graph):
    """The NP-hard [8] variant, at a size where backtracking is feasible."""
    expr = lconcat(sym("a"), lstar(sym("b")))
    result = benchmark(
        lambda: regular_simple_paths(graph, expr, 0, 1, max_length=5))
    for p in result:
        assert p.is_simple()
