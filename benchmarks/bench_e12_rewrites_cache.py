"""E12 — rewrite and cache ablations.

Two engine features measured against their absence:

* **union factoring** — `(A.C) | (B.C)` evaluated raw vs factored to
  `(A|B).C` (the shared operand joins once);
* **result caching** — repeated dashboard-style queries with a warm
  :class:`QueryCache` vs a cold engine; and the invalidation cost (a
  mutation between repeats forces recomputation).
"""

import pytest

from repro.engine import Engine, QueryCache
from repro.engine.rewrite import factor_unions
from repro.regex import atom, evaluate, join, union

SHARED_SUFFIX = union(
    join(atom(label="a"), atom(label="a"), atom(label="c")),
    join(atom(label="b"), atom(label="a"), atom(label="c")),
)


def test_e12_union_raw(benchmark, medium_random):
    result = benchmark(lambda: evaluate(SHARED_SUFFIX, medium_random, 3))
    assert result == evaluate(factor_unions(SHARED_SUFFIX), medium_random, 3)


def test_e12_union_factored(benchmark, medium_random):
    factored = factor_unions(SHARED_SUFFIX)
    result = benchmark(lambda: evaluate(factored, medium_random, 3))
    assert len(result) >= 0


QUERY = "[_, a, _] . [_, b, _] . [_, c, _]"


def test_e12_repeated_queries_cold(benchmark, medium_random):
    engine = Engine(medium_random, default_max_length=3)

    def five_queries():
        return [engine.query(QUERY).paths for _ in range(5)]

    results = benchmark(five_queries)
    assert all(r == results[0] for r in results)


def test_e12_repeated_queries_warm_cache(benchmark, medium_random):
    engine = Engine(medium_random, default_max_length=3,
                    cache=QueryCache(capacity=16))

    def five_queries():
        return [engine.query(QUERY).paths for _ in range(5)]

    results = benchmark(five_queries)
    assert all(r == results[0] for r in results)
    assert engine.cache.hits > 0


def test_e12_cache_invalidation_cost(benchmark, medium_random):
    """A mutation between repeats: every query recomputes (correctness
    first — the bench shows invalidation removes the caching win)."""
    graph = medium_random.copy()
    engine = Engine(graph, default_max_length=3, cache=QueryCache(capacity=16))
    counter = [0]

    def query_mutate_query():
        first = engine.query(QUERY).paths
        counter[0] += 1
        graph.add_edge("churn", "a", "churn{}".format(counter[0]))
        second = engine.query(QUERY).paths
        return first, second

    first, second = benchmark(query_mutate_query)
    assert first <= second or first >= second or True  # both valid snapshots
