"""E9 — the cost-based planner's join ordering vs left-deep evaluation.

A selective atom placed at the *end* of a chain is the planner's showcase:
left-to-right evaluation materializes the huge unrestricted prefix first,
while the optimizer associates the chain so the selective atom prunes early.
Results are asserted identical (join associativity); only cost may differ.
"""

import pytest

from repro.engine import Engine
from repro.regex import atom, join

# [_, _, _] . [_, _, _] . [_, a, v] — the last atom is highly selective.
def selective_tail_chain(vertex):
    return join(atom(), atom(), atom(label="a", head=vertex))


@pytest.fixture(scope="module")
def optimized(medium_random):
    return Engine(medium_random, default_max_length=4, optimize=True)


@pytest.fixture(scope="module")
def left_deep(medium_random):
    return Engine(medium_random, default_max_length=4, optimize=False)


def test_e9_optimized_plan(benchmark, optimized):
    expr = selective_tail_chain(vertex=0)
    result = benchmark(lambda: optimized.query(expr))
    assert all(p.head == 0 for p in result.paths)


def test_e9_left_deep_plan(benchmark, left_deep):
    expr = selective_tail_chain(vertex=0)
    result = benchmark(lambda: left_deep.query(expr))
    assert all(p.head == 0 for p in result.paths)


def test_e9_plans_agree(optimized, left_deep):
    """Associativity: both plans must return the same path set."""
    expr = selective_tail_chain(vertex=0)
    assert optimized.query(expr).paths == left_deep.query(expr).paths


def test_e9_estimated_costs_ordered(optimized, left_deep):
    """The optimizer never picks a worse-estimated plan than left-deep."""
    expr = selective_tail_chain(vertex=0)
    assert (optimized.plan(expr).estimated_cost
            <= left_deep.plan(expr).estimated_cost)


def test_e9_planning_overhead(benchmark, optimized):
    """Planning itself (the O(n^3) chain DP) must be negligible."""
    expr = selective_tail_chain(vertex=0)
    plan = benchmark(lambda: optimized.plan(expr))
    assert plan.estimated_rows >= 0
