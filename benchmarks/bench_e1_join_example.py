"""E1 — the section II worked join example, verified then scaled.

Regenerates the paper's ``A ><_o B`` (asserting the exact four result paths
each run) and measures the join at growing operand sizes so the equijoin's
behaviour is visible beyond the 2x3 toy.
"""

import pytest

from repro.core.pathset import PathSet
from repro.datasets.paper import (
    section2_expected_join,
    section2_left_operand,
    section2_right_operand,
)
from repro.graph.generators import uniform_random


def test_e1_paper_join_example(benchmark):
    """The literal paper example: must produce exactly the four listed paths."""
    a = section2_left_operand()
    b = section2_right_operand()

    result = benchmark(lambda: a.join(b))
    assert result == section2_expected_join()


@pytest.mark.parametrize("edges", [50, 200, 800])
def test_e1_join_scaling(benchmark, edges):
    """|E| grows 4x per step; the hash join should scale near-linearly in
    input + output, unlike the quadratic naive scan (see E6)."""
    graph = uniform_random(max(10, edges // 10), edges,
                           labels=("a", "b"), seed=edges)
    left = graph.edges(label="a")
    right = graph.edges(label="b")

    result = benchmark(lambda: left.join(right))
    assert isinstance(result, PathSet)
